package sched

import (
	"fmt"
	"testing"
)

// recordingPolicy wraps a policy and records its pick sequence, so
// tests can compare the interleavings two policies actually choose.
type recordingPolicy struct {
	inner Policy
	picks []int
}

func (r *recordingPolicy) Name() string { return r.inner.Name() }

func (r *recordingPolicy) Pick(enabled []int, step int) int {
	p := r.inner.Pick(enabled, step)
	r.picks = append(r.picks, p)
	return p
}

func TestRoundRobinPickIsStateless(t *testing.T) {
	rr := NewRoundRobin()
	enabled := []int{3, 5, 9}
	// The pick is a pure function of (enabled, step): querying out of
	// order or repeatedly must not change the answer.  (The old
	// implementation tracked the last pick internally and ignored step,
	// so a round-robin continuation resumed mid-run after a replay
	// prefix drifted from the schedule it was recorded under.)
	if got := rr.Pick(enabled, 4); got != 5 {
		t.Fatalf("Pick(step=4) = %d, want 5", got)
	}
	if got := rr.Pick(enabled, 0); got != 3 {
		t.Fatalf("Pick(step=0) = %d, want 3", got)
	}
	if got := rr.Pick(enabled, 4); got != 5 {
		t.Fatalf("repeated Pick(step=4) = %d, want 5", got)
	}
}

// distinctnessNet is an asymmetric 3-process network whose enabled
// sets keep changing, so each scheduling policy has room to express
// its character.  The asymmetry matters for separating LIFO from
// Highest: rank 0 starts blocked and is woken by rank 2's first send
// while the older-enabled rank 1 still has work, so at that point
// most-recently-enabled (rank 0) and highest-enabled (rank 1)
// disagree.  On a symmetric network LIFO's highest-rank tie-break
// makes it collapse onto Highest.
func distinctnessNet() []Proc[int, int] {
	steps := func(c *Ctx[int], me, n int) {
		for i := 0; i < n; i++ {
			c.Step(fmt.Sprintf("s%d.%d", me, i))
		}
	}
	return []Proc[int, int]{
		func(c *Ctx[int]) int { // woken mid-run by P2
			v := c.Recv(2)
			steps(c, 0, 4)
			return v
		},
		func(c *Ctx[int]) int { // enabled from the start, feeds P2
			steps(c, 1, 3)
			c.Send(2, 10)
			steps(c, 1, 3)
			return 1
		},
		func(c *Ctx[int]) int { // wakes P0 early, then blocks on P1
			c.Send(0, 20)
			v := c.Recv(1)
			steps(c, 2, 4)
			return v
		},
	}
}

// TestDefaultPoliciesProduceDistinctInterleavings guards against
// policies silently collapsing onto the same schedule after a
// refactor: the adversarial LIFO, both rank extremes, rotation,
// alternation, and every seeded random policy must each choose a
// different pick sequence on a 3-process network — and all runs must
// still agree on the final states (Theorem 1).
func TestDefaultPoliciesProduceDistinctInterleavings(t *testing.T) {
	pols := DefaultPolicies(3)
	if len(pols) != 8 {
		t.Fatalf("DefaultPolicies(3) returned %d policies, want 8", len(pols))
	}
	seqs := map[string]string{} // pick sequence -> policy spec that produced it
	var refFinals string
	for _, pol := range pols {
		rec := &recordingPolicy{inner: pol}
		finals, err := RunControlled(distinctnessNet(), rec, Options[int]{MaxActions: 10000})
		if err != nil {
			t.Fatalf("%s: %v", PolicySpec(pol), err)
		}
		if refFinals == "" {
			refFinals = fmt.Sprint(finals)
		} else if got := fmt.Sprint(finals); got != refFinals {
			t.Errorf("%s: finals %s differ from reference %s (determinacy violated)", PolicySpec(pol), got, refFinals)
		}
		key := fmt.Sprint(rec.picks)
		if other, dup := seqs[key]; dup {
			t.Errorf("policies %s and %s chose the identical interleaving %s",
				other, PolicySpec(pol), key)
		}
		seqs[key] = PolicySpec(pol)
	}
}
