package sched

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

func TestParsePolicyRoundTrip(t *testing.T) {
	cases := []struct {
		spec     string
		wantName string
		wantSpec string // "" means identical to spec
	}{
		{spec: "lowest", wantName: "lowest"},
		{spec: "highest", wantName: "highest"},
		{spec: "rr", wantName: "round-robin"},
		{spec: "round-robin", wantName: "round-robin", wantSpec: "rr"},
		{spec: "alt", wantName: "alternating"},
		{spec: "alternating", wantName: "alternating", wantSpec: "alt"},
		{spec: "lifo", wantName: "lifo"},
		{spec: "rand:1", wantName: "random"},
		{spec: "rand:-42", wantName: "random"},
	}
	for _, c := range cases {
		t.Run(c.spec, func(t *testing.T) {
			p, err := ParsePolicy(c.spec)
			if err != nil {
				t.Fatalf("ParsePolicy(%q): %v", c.spec, err)
			}
			if p.Name() != c.wantName {
				t.Errorf("Name = %q, want %q", p.Name(), c.wantName)
			}
			want := c.wantSpec
			if want == "" {
				want = c.spec
			}
			if got := PolicySpec(p); got != want {
				t.Errorf("PolicySpec = %q, want %q", got, want)
			}
			// Round trip: the spec form must parse back to the same policy.
			q, err := ParsePolicy(PolicySpec(p))
			if err != nil {
				t.Fatalf("re-parse %q: %v", PolicySpec(p), err)
			}
			if q.Name() != p.Name() {
				t.Errorf("re-parsed policy is %q, want %q", q.Name(), p.Name())
			}
		})
	}
}

func TestParsePolicyErrors(t *testing.T) {
	for _, spec := range []string{"", "bogus", "rand:", "rand:x", "replay:", "replay:/no/such/file.json"} {
		if _, err := ParsePolicy(spec); err == nil {
			t.Errorf("ParsePolicy(%q) succeeded, want error", spec)
		}
	}
}

func TestParsePolicyRandSeedPreserved(t *testing.T) {
	p, err := ParsePolicy("rand:7")
	if err != nil {
		t.Fatal(err)
	}
	r, ok := p.(*Random)
	if !ok {
		t.Fatalf("ParsePolicy(rand:7) = %T, want *Random", p)
	}
	if r.Seed() != 7 {
		t.Fatalf("seed = %d, want 7", r.Seed())
	}
}

func TestScheduleReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sched.json")
	s := Schedule{Picks: []int{1, 0, 1}, Continue: "rr"}
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	p, err := ParsePolicy("replay:" + path)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := p.(*Replay)
	if !ok {
		t.Fatalf("ParsePolicy(replay:...) = %T, want *Replay", p)
	}
	if fmt.Sprint(r.Picks()) != fmt.Sprint(s.Picks) {
		t.Errorf("picks = %v, want %v", r.Picks(), s.Picks)
	}
	if got := PolicySpec(r.Continuation()); got != "rr" {
		t.Errorf("continuation = %q, want rr", got)
	}
	if got, want := PolicySpec(r), "replay:"+path; got != want {
		t.Errorf("PolicySpec = %q, want %q", got, want)
	}
	// The spec form must itself parse (the round trip through a file).
	if _, err := ParsePolicy(PolicySpec(r)); err != nil {
		t.Fatalf("re-parse: %v", err)
	}
}

func TestScheduleRejectsReplayContinuation(t *testing.T) {
	if _, err := (Schedule{Continue: "replay:x.json"}).Policy(); err == nil {
		t.Fatal("replay continuation accepted, want error")
	}
}

func TestReplayForcesPrefixThenContinues(t *testing.T) {
	rounds := 2
	mk := func() []Proc[int, int] { return pingPong(rounds) }

	// Reference: the continuation alone.
	ref := tracedRun(t, mk(), Lowest{})

	// Forcing the reference's own picks must reproduce it exactly.
	rec := &recordingPolicy{inner: Lowest{}}
	if _, err := RunControlled(mk(), rec, Options[int]{}); err != nil {
		t.Fatal(err)
	}
	re := NewReplay(rec.picks, Lowest{})
	got := tracedRun(t, mk(), re)
	if got != ref {
		t.Fatalf("replayed trace differs from original:\n%s\nvs\n%s", got, ref)
	}
	if _, diverged := re.Diverged(); diverged {
		t.Fatal("replay of a recorded schedule reported divergence")
	}

	// A partial prefix forces its steps, then the continuation takes over.
	half := NewReplay(rec.picks[:len(rec.picks)/2], Lowest{})
	if got := tracedRun(t, mk(), half); got != ref {
		t.Fatalf("half-prefix replay with same continuation diverged:\n%s\nvs\n%s", got, ref)
	}
}

func TestReplayRecordsDivergenceOnDisabledPick(t *testing.T) {
	mk := func() []Proc[int, int] { return pingPong(1) }
	// Rank 1 starts blocked in Recv, so forcing it first is infeasible.
	re := NewReplay([]int{1}, Lowest{})
	if _, err := RunControlled(mk(), re, Options[int]{}); err != nil {
		t.Fatal(err)
	}
	step, diverged := re.Diverged()
	if !diverged || step != 0 {
		t.Fatalf("Diverged = (%d, %v), want (0, true)", step, diverged)
	}
}

// tracedRun executes the network under pol and returns the formatted
// trace.
func tracedRun(t *testing.T, procs []Proc[int, int], pol Policy) string {
	t.Helper()
	tr := trace.New()
	if _, err := RunControlled(procs, pol, Options[int]{Trace: tr}); err != nil {
		t.Fatal(err)
	}
	return tr.Format()
}
