package sched

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/obs"
	"repro/internal/trace"
)

// worker is the process backend of a multi-process run: this OS process
// executes exactly one rank, and every channel reaches the other ranks
// through a per-rank Transport (channel.DialMesh).  There is no global
// supervisor — deadlock detection needs a view of every rank, which no
// single process has — so hangs are bounded by the launcher's timeout,
// and per-process failures (panics, transport errors) are returned as
// ordinary errors for the launcher to collect.
type worker[T any] struct {
	net channel.Transport[T]
	tr  *trace.SafeRecorder
	tag func(T) string
	col *obs.Collector
}

func (w *worker[T]) send(from, to int, v T) {
	w.net.Chan(from, to).Send(v)
	if w.tr != nil {
		w.tr.Add(from, trace.Send, to, w.tag(v))
	}
}

func (w *worker[T]) recv(from, to int) T {
	ep := w.net.Chan(from, to)
	if v, ok := ep.TryRecv(); ok {
		if w.tr != nil {
			w.tr.Add(to, trace.Recv, from, w.tag(v))
		}
		return v
	}
	w.col.CountBlock(to)
	// About to block: push our coalesced outbound frames to the wire
	// first, or a peer could be left waiting on bytes that never leave
	// this process (the mutual-flush rule that keeps the mesh live).
	w.net.Flush(to)
	v := ep.Recv()
	if w.tr != nil {
		w.tr.Add(to, trace.Recv, from, w.tag(v))
	}
	return v
}

func (w *worker[T]) step(id int, name string) {
	if w.tr != nil {
		w.tr.Add(id, trace.Step, -1, name)
	}
}

func (w *worker[T]) flush(id int) { w.net.Flush(id) }

// RunWorker executes rank `rank` of a P-process network whose channels
// are carried by tr — one call per OS process, with tr typically built
// by channel.DialMesh.  By Theorem 1 the rank's result is bitwise
// identical to the same rank's result under RunControlled or
// RunConcurrent.
//
// A panic in the process body (including a TransportError from a failed
// wire) is recovered and returned as an error.  The rank's links are
// flushed when the process body returns, so its final frames reach
// peers that are still running.  The caller retains ownership of tr and
// should Close it after the result is consumed.
func RunWorker[T, R any](rank int, tr channel.Transport[T], proc Proc[T, R], opt Options[T]) (res R, err error) {
	p := tr.P()
	if rank < 0 || rank >= p {
		return res, fmt.Errorf("sched: worker rank %d out of range (P=%d)", rank, p)
	}
	if opt.Tag == nil {
		opt.Tag = func(v T) string { return fmt.Sprint(v) }
	}
	if opt.WrapEndpoint != nil {
		tr.WrapEndpoints(opt.WrapEndpoint)
	}
	back := &worker[T]{net: tr, tr: trace.Safe(opt.Trace), tag: opt.Tag, col: opt.Collector}
	ctx := &Ctx[T]{id: rank, p: p, ops: back, col: opt.Collector, bytes: opt.MsgBytes}
	defer func() {
		if r := recover(); r != nil {
			err = wrapPanic(rank, r)
		}
		tr.Flush(rank)
	}()
	res = proc(ctx)
	return res, err
}
