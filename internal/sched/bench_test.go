package sched

import (
	"testing"

	"repro/internal/obs"
)

// BenchmarkControlledPingPong measures the cooperative scheduler's
// per-action overhead.
func BenchmarkControlledPingPong(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunControlled(pingPong(100), NewRoundRobin(), Options[int]{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentPingPong measures the free-running executor on the
// same workload.
func BenchmarkConcurrentPingPong(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunConcurrent(pingPong(100), Options[int]{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObservedPingPong measures the same workloads with the obs
// collector attached; the delta against the plain benchmarks is the
// instrumentation overhead.
func BenchmarkObservedPingPong(b *testing.B) {
	opts := func() Options[int] {
		return Options[int]{
			Collector: obs.New(2),
			MsgBytes:  func(int) int { return 8 },
		}
	}
	b.Run("controlled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := RunControlled(pingPong(100), NewRoundRobin(), opts()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("concurrent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := RunConcurrent(pingPong(100), opts()); err != nil {
				b.Fatal(err)
			}
		}
	})
}
