package sched

import "testing"

// BenchmarkControlledPingPong measures the cooperative scheduler's
// per-action overhead.
func BenchmarkControlledPingPong(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunControlled(pingPong(100), NewRoundRobin(), Options[int]{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentPingPong measures the free-running executor on the
// same workload.
func BenchmarkConcurrentPingPong(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunConcurrent(pingPong(100), Options[int]{}); err != nil {
			b.Fatal(err)
		}
	}
}
