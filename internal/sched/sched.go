// Package sched executes networks of deterministic processes that
// interact only through single-reader single-writer channels with
// infinite slack — the parallel program model of the paper's §3.1.
//
// Two executors are provided.  RunControlled is a cooperative
// scheduler: exactly one process runs at a time, and at every
// communication action a pluggable Policy chooses which enabled process
// acts next.  Running the same network under many policies (or many
// random seeds) and comparing final states is the empirical form of
// Theorem 1: all maximal interleavings terminate in the same final
// state.  RunConcurrent executes the network with real goroutines over
// concurrent unbounded channels — the "real parallel" version that the
// mechanical transformation targets.
//
// Processes are functions of a Ctx; they must not share memory (the
// scheduler cannot enforce this, but the determinacy checker in
// internal/core detects violations by exhibiting diverging final
// states).
package sched

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/channel"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Proc is one deterministic process.  Its return value is the process's
// final state for determinacy comparison.
type Proc[T, R any] func(ctx *Ctx[T]) R

// Ctx gives a process access to its identity and its channels.
type Ctx[T any] struct {
	id, p int
	ops   ops[T]
	// col and bytes instrument the communication actions (Options.
	// Collector / Options.MsgBytes).  col == nil is the disabled fast
	// path: one predictable branch, no calls, no allocations.
	col   *obs.Collector
	bytes func(T) int
}

// ops abstracts the execution backends.
type ops[T any] interface {
	send(from, to int, v T)
	recv(from, to int) T
	step(id int, name string)
	// flush pushes any transport-buffered outbound messages of rank id
	// to the wire; a no-op on backends with synchronous delivery.
	flush(id int)
}

// ID returns the process's rank, in [0, P).
func (c *Ctx[T]) ID() int { return c.id }

// P returns the number of processes in the network.
func (c *Ctx[T]) P() int { return c.p }

// Send sends v on the channel from this process to process `to`.  It
// never blocks: channels have infinite slack.
func (c *Ctx[T]) Send(to int, v T) {
	if to < 0 || to >= c.p {
		panic(fmt.Sprintf("sched: send to process %d out of range [0,%d)", to, c.p))
	}
	c.ops.send(c.id, to, v)
	if c.col != nil {
		n := 0
		if c.bytes != nil {
			n = c.bytes(v)
		}
		c.col.CountSend(c.id, to, n)
	}
}

// Recv receives the next value on the channel from process `from` to
// this process, blocking until one is available.
func (c *Ctx[T]) Recv(from int) T {
	if from < 0 || from >= c.p {
		panic(fmt.Sprintf("sched: recv from process %d out of range [0,%d)", from, c.p))
	}
	v := c.ops.recv(from, c.id)
	if c.col != nil {
		n := 0
		if c.bytes != nil {
			n = c.bytes(v)
		}
		c.col.CountRecv(c.id, from, n)
	}
	return v
}

// Step marks a named local-computation action.  In controlled runs it
// is an interleaving point; it has no semantic effect.
func (c *Ctx[T]) Step(name string) {
	c.ops.step(c.id, name)
	if c.col != nil {
		c.col.CountStep(c.id)
	}
}

// Flush pushes any transport-buffered outbound messages of this process
// to the wire.  On in-process backends delivery is synchronous and this
// is free; on socket transports it seals the coalesced frames queued
// for each neighbour into one vectored write.  The runtime flushes
// automatically before a process blocks in Recv and when it terminates,
// so Flush is never needed for correctness — mesh operations call it at
// the end of their send sections so each exchange phase reaches the
// wire as a single write per neighbour.
func (c *Ctx[T]) Flush() { c.ops.flush(c.id) }

// ErrDeadlock is returned by RunControlled and RunConcurrent when no
// process can make progress but not all have terminated — i.e. the
// interleaving is maximal yet the network hangs.  Well-formed
// transformations of SSP programs never deadlock (all sends precede the
// matching receives).
var ErrDeadlock = errors.New("sched: deadlock: all unfinished processes are blocked on empty channels")

// ErrStall is returned by RunConcurrent's watchdog when the network
// performed no communication action for a full StallTimeout window even
// though not every unfinished process was provably blocked — e.g. a
// sender delayed indefinitely by fault injection.
var ErrStall = errors.New("sched: stall: no communication progress within the watchdog window")

// BlockedProc identifies one process blocked on an empty channel: Rank
// is waiting to receive on the channel From -> Rank.
type BlockedProc struct {
	Rank, From int
}

// DeadlockError is the diagnostic error produced when the concurrent
// supervisor aborts a hung run.  It names every blocked rank and the
// empty channel it waits on, so the wait-for structure is visible.  It
// unwraps to ErrDeadlock (or ErrStall when the stall watchdog, rather
// than exact all-blocked detection, raised it).
type DeadlockError struct {
	// Blocked lists the processes waiting on empty channels, in rank
	// order.
	Blocked []BlockedProc
	// Unfinished is the number of processes that had not terminated.
	Unfinished int
	// Pending is the total number of undelivered values in the network
	// at detection time.
	Pending int
	// Stalled marks a watchdog timeout (some unfinished process was not
	// observably blocked, but nothing moved for a full window).
	Stalled bool
}

// Error implements error.
func (e *DeadlockError) Error() string {
	var waits []string
	for _, b := range e.Blocked {
		waits = append(waits, fmt.Sprintf("P%d waits on empty channel P%d->P%d", b.Rank, b.From, b.Rank))
	}
	kind := "deadlock"
	if e.Stalled {
		kind = "stall"
	}
	return fmt.Sprintf("sched: %s: %d unfinished processes, %d undelivered messages; %s",
		kind, e.Unfinished, e.Pending, strings.Join(waits, ", "))
}

// Unwrap lets errors.Is(err, ErrDeadlock) / errors.Is(err, ErrStall)
// classify supervisor aborts.
func (e *DeadlockError) Unwrap() error {
	if e.Stalled {
		return ErrStall
	}
	return ErrDeadlock
}

// wrapPanic converts a recovered panic value into the supervisor's
// process-failure error.  Error panic values are wrapped with %w so
// injected faults (e.g. fault.Crash) stay visible to errors.As through
// the runtime layers.
func wrapPanic(id int, r any) error {
	if err, ok := r.(error); ok {
		return fmt.Errorf("sched: process %d panicked: %w", id, err)
	}
	return fmt.Errorf("sched: process %d panicked: %v", id, r)
}

// request kinds exchanged between process coroutines and the controller.
type reqKind int

const (
	reqSend reqKind = iota
	reqRecv
	reqStep
	reqDone
)

type request[T any] struct {
	kind reqKind
	peer int
	val  T
	tag  string
	err  error // for reqDone: non-nil if the process panicked
}

type pstate[T any] struct {
	req    chan request[T]
	resume chan T
	// pending holds the process's outstanding request by value (a
	// pointer here would heap-allocate on every action).
	pending    request[T]
	hasPending bool
	done       bool
	blocked    bool // diagnostic: last scheduling pass found it disabled
}

// controlled is the cooperative backend handed to process Ctxs.
type controlled[T any] struct {
	ps      []*pstate[T]
	tag     func(T) string
	tracing bool // only render message tags when a trace recorder wants them
}

func (b *controlled[T]) send(from, to int, v T) {
	var tg string
	if b.tracing {
		tg = b.tag(v)
	}
	b.ps[from].req <- request[T]{kind: reqSend, peer: to, val: v, tag: tg}
	<-b.ps[from].resume
}

func (b *controlled[T]) recv(from, to int) T {
	b.ps[to].req <- request[T]{kind: reqRecv, peer: from}
	return <-b.ps[to].resume
}

func (b *controlled[T]) step(id int, name string) {
	b.ps[id].req <- request[T]{kind: reqStep, tag: name}
	<-b.ps[id].resume
}

// flush is a no-op: the controlled backend delivers synchronously.
func (b *controlled[T]) flush(id int) {}

// PendingOp describes the communication action an enabled process
// will perform when picked — the controlled scheduler's enabled-set
// introspection, consumed by OpPolicy implementations (the schedule
// explorer needs to know *what* each candidate would do, not just that
// it can act).
type PendingOp struct {
	// Rank is the process that would act.
	Rank int
	// Kind is the action class: trace.Step, trace.Send, or trace.Recv.
	Kind trace.Kind
	// Peer is the other endpoint for Send/Recv, -1 for Step.
	Peer int
	// Tag is the step name for Step actions.  For Send it carries the
	// rendered message only when the run is tracing (Options.Trace set);
	// it is empty otherwise, and always empty for Recv.
	Tag string
}

// String renders the op for trace output.
func (o PendingOp) String() string {
	switch o.Kind {
	case trace.Send:
		return fmt.Sprintf("P%d send->P%d", o.Rank, o.Peer)
	case trace.Recv:
		return fmt.Sprintf("P%d recv<-P%d", o.Rank, o.Peer)
	default:
		if o.Tag != "" {
			return fmt.Sprintf("P%d step %q", o.Rank, o.Tag)
		}
		return fmt.Sprintf("P%d %s", o.Rank, o.Kind)
	}
}

// OpPolicy is an optional Policy extension: when the policy passed to
// RunControlled implements it, the scheduler calls PickOp with the
// pending operation of every enabled process (ops[i] describes
// enabled[i]) instead of Pick.  Policies that do not need op
// introspection pay nothing — the ops slice is only built when the
// policy asks for it.
type OpPolicy interface {
	Policy
	PickOp(enabled []int, ops []PendingOp, step int) int
}

// Options configures a controlled run.
type Options[T any] struct {
	// Trace, if non-nil, records every action of the interleaving.
	// RunConcurrent serialises concurrent Adds internally (trace.Safe),
	// so a plain Recorder is accepted by both executors.
	Trace *trace.Recorder
	// Collector, if non-nil, receives per-rank counters for every
	// communication action (sends, receives, steps, blocks, estimated
	// bytes) — the observability seam.  A nil collector adds no
	// overhead: the hot paths take one branch and allocate nothing.
	Collector *obs.Collector
	// MsgBytes estimates a message's payload size in bytes for the
	// collector's byte counters; nil counts zero bytes per message.
	MsgBytes func(T) int
	// Tag renders a message for tracing; defaults to fmt.Sprint.
	Tag func(T) string
	// MaxActions aborts runs exceeding this many actions (0 = no limit);
	// a backstop against non-terminating networks in tests.
	MaxActions int
	// StallTimeout, if positive, arms RunConcurrent's stall watchdog: if
	// no communication action completes within a full window, the run is
	// aborted with a diagnostic DeadlockError instead of hanging.  True
	// deadlocks (every unfinished process blocked on an empty channel)
	// are detected exactly and immediately regardless of this setting.
	// The timeout must comfortably exceed both the longest local
	// computation between communication actions and any injected message
	// delay, or healthy runs will be reported as stalled.
	StallTimeout time.Duration
	// WrapEndpoint, if non-nil, wraps every channel of the network —
	// the injection and instrumentation seam.  RunConcurrent uses it
	// for message-delivery faults (e.g. seeded delays); RunControlled
	// applies it too, so observers (e.g. channel.Hooked, which numbers
	// each channel's send/recv operations for the schedule explorer)
	// can watch the message flow of a controlled run.  Wrappers must
	// preserve per-channel FIFO order and report Len faithfully — the
	// controlled scheduler's enabledness and deadlock checks read it;
	// the paper's model gives channels infinite slack, so pure delays
	// keep the interleaving legal.
	WrapEndpoint func(from, to int, e channel.Endpoint[T]) channel.Endpoint[T]
	// Transport, if non-nil, supplies the message substrate for
	// RunConcurrent in place of the default in-process channel network —
	// e.g. a loopback socket mesh (channel.NewLoopbackMesh).  Its P()
	// must match the number of processes.  The caller retains ownership:
	// RunConcurrent does not close it.  Ignored by RunControlled, which
	// by construction simulates the network sequentially.
	Transport channel.Transport[T]
}

// RunControlled executes the processes under the given interleaving
// policy and returns their final states.  The run is fully
// deterministic given the policy.  It returns ErrDeadlock if the
// maximal interleaving leaves unfinished processes blocked.
func RunControlled[T, R any](procs []Proc[T, R], pol Policy, opt Options[T]) ([]R, error) {
	p := len(procs)
	if p == 0 {
		return nil, nil
	}
	if opt.Tag == nil {
		opt.Tag = func(v T) string { return fmt.Sprint(v) }
	}
	back := &controlled[T]{ps: make([]*pstate[T], p), tag: opt.Tag, tracing: opt.Trace != nil}
	results := make([]R, p)
	for i := range back.ps {
		back.ps[i] = &pstate[T]{
			req:    make(chan request[T]),
			resume: make(chan T),
		}
	}
	// Spawn coroutines; each waits for an initial resume before touching
	// user code, so exactly one process ever runs at a time.  A panic in
	// user code is captured and surfaced as a run error rather than
	// crashing the whole scheduler.
	for i := 0; i < p; i++ {
		i := i
		ctx := &Ctx[T]{id: i, p: p, ops: back, col: opt.Collector, bytes: opt.MsgBytes}
		go func() {
			<-back.ps[i].resume
			done := request[T]{kind: reqDone}
			defer func() {
				if r := recover(); r != nil {
					done.err = wrapPanic(i, r)
				}
				back.ps[i].req <- done
			}()
			results[i] = procs[i](ctx)
		}()
	}

	net := channel.NewQueueNet[T](p)
	if opt.WrapEndpoint != nil {
		net.WrapEndpoints(opt.WrapEndpoint)
	}
	var zero T
	var failure error
	// advance lets process i run to its next request and records it.
	advance := func(i int, v T) {
		back.ps[i].resume <- v
		r := <-back.ps[i].req
		if r.kind == reqDone {
			back.ps[i].done = true
			back.ps[i].hasPending = false
			if r.err != nil && failure == nil {
				failure = r.err
			}
			opt.Trace.Add(i, trace.Done, -1, "")
			return
		}
		back.ps[i].pending = r
		back.ps[i].hasPending = true
		if r.kind == reqRecv && net.Chan(r.peer, i).Len() == 0 {
			opt.Trace.Add(i, trace.Block, r.peer, "")
			opt.Collector.CountBlock(i)
		}
	}

	// Bring every process to its first request, in rank order.
	for i := 0; i < p; i++ {
		advance(i, zero)
	}

	enabled := make([]int, 0, p)
	actions := 0
	for {
		enabled = enabled[:0]
		allDone := true
		for i, ps := range back.ps {
			if ps.done {
				continue
			}
			allDone = false
			if !ps.hasPending {
				continue
			}
			r := &ps.pending
			if r.kind == reqRecv && net.Chan(r.peer, i).Len() == 0 {
				ps.blocked = true
				continue
			}
			ps.blocked = false
			enabled = append(enabled, i)
		}
		if allDone {
			return results, failure
		}
		if len(enabled) == 0 {
			if failure != nil {
				// A panicked process explains the stall better than a
				// generic deadlock report.
				return results, failure
			}
			// Unblocking the coroutines is impossible; they leak by
			// design in this error path (tests construct few of them).
			// Report the wait-for relation so the cycle is visible.
			var waits []string
			for i, ps := range back.ps {
				if ps.done || !ps.hasPending {
					continue
				}
				if r := ps.pending; r.kind == reqRecv {
					waits = append(waits, fmt.Sprintf("P%d waits on P%d", i, r.peer))
				}
			}
			return results, fmt.Errorf("%w (after %d actions; %s)",
				ErrDeadlock, actions, strings.Join(waits, ", "))
		}
		var pick int
		if op, ok := pol.(OpPolicy); ok {
			ops := make([]PendingOp, len(enabled))
			for k, i := range enabled {
				r := &back.ps[i].pending
				po := PendingOp{Rank: i, Peer: -1, Tag: r.tag}
				switch r.kind {
				case reqSend:
					po.Kind, po.Peer = trace.Send, r.peer
				case reqRecv:
					po.Kind, po.Peer, po.Tag = trace.Recv, r.peer, ""
				case reqStep:
					po.Kind = trace.Step
				}
				ops[k] = po
			}
			pick = op.PickOp(enabled, ops, actions)
		} else {
			pick = pol.Pick(enabled, actions)
		}
		if !contains(enabled, pick) {
			panic(fmt.Sprintf("sched: policy %q picked disabled process %d from %v", pol.Name(), pick, enabled))
		}
		ps := back.ps[pick]
		r := ps.pending
		ps.hasPending = false
		switch r.kind {
		case reqSend:
			net.Send(pick, r.peer, r.val)
			opt.Trace.Add(pick, trace.Send, r.peer, r.tag)
			advance(pick, zero)
		case reqRecv:
			v := net.Recv(r.peer, pick)
			if opt.Trace != nil {
				opt.Trace.Add(pick, trace.Recv, r.peer, opt.Tag(v))
			}
			advance(pick, v)
		case reqStep:
			opt.Trace.Add(pick, trace.Step, -1, r.tag)
			advance(pick, zero)
		}
		actions++
		if opt.MaxActions > 0 && actions > opt.MaxActions {
			return results, fmt.Errorf("sched: exceeded MaxActions=%d; network may not terminate", opt.MaxActions)
		}
	}
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// abortPanic is the panic value used to unwind a process goroutine when
// the supervisor aborts the run (deadlock or stall).  It is not a
// process failure; the recovery wrapper swallows it.
type abortPanic struct{}

// concurrent is the free-running goroutine backend, supervised: it
// tracks which processes are blocked on which empty channels, detects
// the all-blocked deadlock condition exactly at the moment it arises,
// and can abort the whole network so RunConcurrent returns a diagnostic
// error instead of hanging.
type concurrent[T any] struct {
	net channel.Transport[T]
	// external marks a caller-supplied transport (Options.Transport):
	// delivery may be asynchronous and buffered, so receives must flush
	// before blocking and the deadlock detector must respect in-flight
	// messages.  The default in-process network keeps external false and
	// pays nothing.
	external bool

	// mu guards waitOn, done, failed, abort and the condition variable.
	// Blocked receives park on cond; every send broadcasts.
	mu   sync.Mutex
	cond *sync.Cond
	// waitOn[i] is the peer rank process i is blocked receiving from, or
	// -1 when i is not blocked in a receive.
	waitOn []int
	done   []bool
	nDone  int
	// failed is the first process-panic error; abort is the reason the
	// supervisor tore the run down (deadlock/stall diagnostic).
	failed error
	abort  error
	// aborted is a lock-free mirror of abort != nil, checked on the hot
	// paths (send/step) without taking mu.
	aborted atomic.Bool
	// progress counts completed communication actions, for the stall
	// watchdog.
	progress atomic.Uint64

	// tr serialises trace recording across the process goroutines; nil
	// when tracing is off (SafeRecorder methods are nil-safe).
	tr  *trace.SafeRecorder
	tag func(T) string
	// col counts blocked receives (the other counters live in Ctx).
	col *obs.Collector
}

func newConcurrent[T any](p int, opt Options[T]) *concurrent[T] {
	var net channel.Transport[T]
	if opt.Transport != nil {
		if opt.Transport.P() != p {
			panic(fmt.Sprintf("sched: transport built for %d processes, run has %d", opt.Transport.P(), p))
		}
		net = opt.Transport
	} else {
		net = channel.NewChanNet[T](p)
	}
	if opt.WrapEndpoint != nil {
		net.WrapEndpoints(opt.WrapEndpoint)
	}
	b := &concurrent[T]{
		net:      net,
		external: opt.Transport != nil,
		waitOn:   make([]int, p),
		done:     make([]bool, p),
		tr:       trace.Safe(opt.Trace),
		tag:      opt.Tag,
		col:      opt.Collector,
	}
	for i := range b.waitOn {
		b.waitOn[i] = -1
	}
	b.cond = sync.NewCond(&b.mu)
	if b.external {
		// Asynchronous deliveries land outside any send path, so the
		// transport must wake blocked receivers itself.
		net.Notify(func() {
			b.mu.Lock()
			b.cond.Broadcast()
			b.mu.Unlock()
		})
	}
	return b
}

func (b *concurrent[T]) send(from, to int, v T) {
	if b.aborted.Load() {
		panic(abortPanic{})
	}
	// The send itself runs outside mu: injected delivery delays must
	// slow only this channel, not the whole network.
	b.net.Chan(from, to).Send(v)
	b.progress.Add(1)
	b.mu.Lock()
	b.cond.Broadcast()
	b.mu.Unlock()
	if b.tr != nil {
		b.tr.Add(from, trace.Send, to, b.tag(v))
	}
}

func (b *concurrent[T]) recv(from, to int) T {
	ep := b.net.Chan(from, to)
	if b.external {
		// We may block here, and the frames coalesced on our own links
		// may be exactly what our peers need first: push them out.  The
		// flush runs outside mu (it performs socket writes).
		b.net.Flush(to)
	}
	b.mu.Lock()
	for {
		if b.abort != nil {
			b.mu.Unlock()
			panic(abortPanic{})
		}
		if v, ok := ep.TryRecv(); ok {
			b.waitOn[to] = -1
			b.mu.Unlock()
			b.progress.Add(1)
			if b.tr != nil {
				b.tr.Add(to, trace.Recv, from, b.tag(v))
			}
			return v
		}
		if b.waitOn[to] != from {
			// First finding the channel empty (not a spurious wakeup):
			// this is the one logical block of this receive.
			b.waitOn[to] = from
			b.col.CountBlock(to)
		}
		if b.external {
			if err := b.net.Err(); err != nil {
				b.abortLocked(fmt.Errorf("sched: transport failed: %w", err))
				continue
			}
		}
		// This process just became blocked on an empty channel: if every
		// other unfinished process already is, the network can never
		// move again — report the deadlock now rather than hang.
		if d := b.deadlockLocked(); d != nil {
			b.abortLocked(d)
			continue // next iteration unwinds via abortPanic
		}
		b.cond.Wait()
	}
}

func (b *concurrent[T]) step(id int, name string) {
	if b.aborted.Load() {
		panic(abortPanic{})
	}
	b.progress.Add(1)
	if b.tr != nil {
		b.tr.Add(id, trace.Step, -1, name)
	}
}

// flush seals rank id's coalesced outbound frames into the wire.  On
// the default in-process network Flush is a no-op method call.
func (b *concurrent[T]) flush(id int) {
	if b.external {
		b.net.Flush(id)
	}
}

// markDone records a process's termination (normal or by panic) and
// re-checks the deadlock condition: the remaining processes may now all
// be blocked on channels nobody will ever fill.
func (b *concurrent[T]) markDone(id int, err error) {
	if b.external {
		// Termination flush: a finished process never blocks in Recv
		// again, so this is the last chance for its buffered frames to
		// reach peers still waiting on them.
		b.net.Flush(id)
	}
	b.mu.Lock()
	b.done[id] = true
	b.nDone++
	if err != nil && b.failed == nil {
		b.failed = err
	}
	if d := b.deadlockLocked(); d != nil {
		b.abortLocked(d)
	}
	b.mu.Unlock()
	if b.tr != nil {
		b.tr.Add(id, trace.Done, -1, "")
	}
}

// abortLocked tears the run down: blocked receivers wake and unwind,
// and every later communication action panics out of the process.
// Callers must not pass nil.
func (b *concurrent[T]) abortLocked(reason error) {
	if b.abort != nil {
		return
	}
	b.abort = reason
	b.aborted.Store(true)
	b.cond.Broadcast()
}

// deadlockLocked reports the network's exact deadlock condition: every
// unfinished process is blocked receiving from an empty channel.  No
// such process can ever be re-enabled (only unfinished processes could
// send, and all of them are blocked), so this detection has no false
// positives and no timing dependence.  Returns nil when some process is
// running, some awaited channel has a value, or everything finished.
func (b *concurrent[T]) deadlockLocked() *DeadlockError {
	// Detection pass first, allocation-free: this runs every time any
	// receiver blocks, so the common "somebody is still running" answer
	// must not heap-allocate (the steady-state message path is measured
	// at zero allocations per step).
	if b.external && b.net.InFlight() > 0 {
		// A message has been sent but not yet delivered to its inbox:
		// some receiver is about to be re-enabled.  (Senders flush
		// before blocking and on termination, so at this point every
		// undelivered message is visible either in an endpoint queue or
		// in this in-flight count — the detection stays exact.)
		return nil
	}
	unfinished := 0
	for i, from := range b.waitOn {
		if b.done[i] {
			continue
		}
		if from < 0 {
			return nil // process i is running or mid-send
		}
		if b.net.Chan(from, i).Len() > 0 {
			return nil // process i is about to wake
		}
		unfinished++
	}
	if unfinished == 0 {
		return nil // all done
	}
	// Confirmed deadlock: now build the diagnostic (cold path).
	blocked := make([]BlockedProc, 0, unfinished)
	for i, from := range b.waitOn {
		if !b.done[i] {
			blocked = append(blocked, BlockedProc{Rank: i, From: from})
		}
	}
	return &DeadlockError{
		Blocked:    blocked,
		Unfinished: len(blocked),
		Pending:    b.net.Pending(),
	}
}

// watchStalls samples the progress counter; if nothing moved for a full
// window while unfinished processes remain, it aborts with a stall
// diagnostic.  This is the heuristic complement to the exact deadlock
// detector, for hangs it cannot see: a sender sleeping in an injected
// delay, or a process that will never reach its next action.
func (b *concurrent[T]) watchStalls(timeout time.Duration, stop <-chan struct{}) {
	tick := time.NewTicker(timeout)
	defer tick.Stop()
	last := b.progress.Load()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		cur := b.progress.Load()
		b.mu.Lock()
		if b.abort != nil || b.nDone == len(b.done) {
			b.mu.Unlock()
			return
		}
		if cur == last {
			var blocked []BlockedProc
			unfinished := 0
			for i, from := range b.waitOn {
				if b.done[i] {
					continue
				}
				unfinished++
				if from >= 0 {
					blocked = append(blocked, BlockedProc{Rank: i, From: from})
				}
			}
			b.abortLocked(&DeadlockError{
				Blocked:    blocked,
				Unfinished: unfinished,
				Pending:    b.net.Pending(),
				Stalled:    true,
			})
			b.mu.Unlock()
			return
		}
		last = cur
		b.mu.Unlock()
	}
}

// RunConcurrent executes the processes as real goroutines over
// concurrent unbounded channels and returns their final states.  The
// Go runtime chooses the interleaving; by Theorem 1 the results equal
// those of any controlled run of the same (well-formed) network.  If
// opt.Trace is non-nil it records one legal interleaving order.
//
// The execution is supervised: a panic in any process is recovered and
// returned as an error (wrapping the panic value when it is an error)
// instead of crashing the program, and a deadlocked network — every
// unfinished process blocked on an empty channel — is torn down with a
// diagnostic DeadlockError naming the blocked ranks and empty channels
// instead of hanging.  On any error the returned results are partial
// and should not be used.  One limitation: a process that loops forever
// without performing any Send/Recv/Step action cannot be interrupted;
// arm Options.StallTimeout to at least get the run diagnosed (the
// return still waits for such a process).
func RunConcurrent[T, R any](procs []Proc[T, R], opt Options[T]) ([]R, error) {
	p := len(procs)
	if p == 0 {
		return nil, nil
	}
	if opt.Tag == nil {
		opt.Tag = func(v T) string { return fmt.Sprint(v) }
	}
	back := newConcurrent[T](p, opt)
	results := make([]R, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for i := 0; i < p; i++ {
		i := i
		ctx := &Ctx[T]{id: i, p: p, ops: back, col: opt.Collector, bytes: opt.MsgBytes}
		go func() {
			defer wg.Done()
			var failure error
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(abortPanic); !ok {
						failure = wrapPanic(i, r)
					}
				}
				back.markDone(i, failure)
			}()
			results[i] = procs[i](ctx)
		}()
	}
	if opt.StallTimeout > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go back.watchStalls(opt.StallTimeout, stop)
	}
	wg.Wait()
	// A panicked process explains a subsequent teardown better than the
	// deadlock it caused, so it takes precedence — mirroring
	// RunControlled's error priority.
	back.mu.Lock()
	failed, aborted := back.failed, back.abort
	back.mu.Unlock()
	if failed != nil {
		return results, failed
	}
	if aborted != nil {
		return results, aborted
	}
	return results, nil
}
