// Package sched executes networks of deterministic processes that
// interact only through single-reader single-writer channels with
// infinite slack — the parallel program model of the paper's §3.1.
//
// Two executors are provided.  RunControlled is a cooperative
// scheduler: exactly one process runs at a time, and at every
// communication action a pluggable Policy chooses which enabled process
// acts next.  Running the same network under many policies (or many
// random seeds) and comparing final states is the empirical form of
// Theorem 1: all maximal interleavings terminate in the same final
// state.  RunConcurrent executes the network with real goroutines over
// concurrent unbounded channels — the "real parallel" version that the
// mechanical transformation targets.
//
// Processes are functions of a Ctx; they must not share memory (the
// scheduler cannot enforce this, but the determinacy checker in
// internal/core detects violations by exhibiting diverging final
// states).
package sched

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/channel"
	"repro/internal/trace"
)

// Proc is one deterministic process.  Its return value is the process's
// final state for determinacy comparison.
type Proc[T, R any] func(ctx *Ctx[T]) R

// Ctx gives a process access to its identity and its channels.
type Ctx[T any] struct {
	id, p int
	ops   ops[T]
}

// ops abstracts the two execution backends.
type ops[T any] interface {
	send(from, to int, v T)
	recv(from, to int) T
	step(id int, name string)
}

// ID returns the process's rank, in [0, P).
func (c *Ctx[T]) ID() int { return c.id }

// P returns the number of processes in the network.
func (c *Ctx[T]) P() int { return c.p }

// Send sends v on the channel from this process to process `to`.  It
// never blocks: channels have infinite slack.
func (c *Ctx[T]) Send(to int, v T) {
	if to < 0 || to >= c.p {
		panic(fmt.Sprintf("sched: send to process %d out of range [0,%d)", to, c.p))
	}
	c.ops.send(c.id, to, v)
}

// Recv receives the next value on the channel from process `from` to
// this process, blocking until one is available.
func (c *Ctx[T]) Recv(from int) T {
	if from < 0 || from >= c.p {
		panic(fmt.Sprintf("sched: recv from process %d out of range [0,%d)", from, c.p))
	}
	return c.ops.recv(from, c.id)
}

// Step marks a named local-computation action.  In controlled runs it
// is an interleaving point; it has no semantic effect.
func (c *Ctx[T]) Step(name string) { c.ops.step(c.id, name) }

// ErrDeadlock is returned by RunControlled when no process can make
// progress but not all have terminated — i.e. the interleaving is
// maximal yet the network hangs.  Well-formed transformations of SSP
// programs never deadlock (all sends precede the matching receives).
var ErrDeadlock = errors.New("sched: deadlock: all unfinished processes are blocked on empty channels")

// request kinds exchanged between process coroutines and the controller.
type reqKind int

const (
	reqSend reqKind = iota
	reqRecv
	reqStep
	reqDone
)

type request[T any] struct {
	kind reqKind
	peer int
	val  T
	tag  string
	err  error // for reqDone: non-nil if the process panicked
}

type pstate[T any] struct {
	req     chan request[T]
	resume  chan T
	pending *request[T]
	done    bool
	blocked bool // diagnostic: last scheduling pass found it disabled
}

// controlled is the cooperative backend handed to process Ctxs.
type controlled[T any] struct {
	ps  []*pstate[T]
	tag func(T) string
}

func (b *controlled[T]) send(from, to int, v T) {
	b.ps[from].req <- request[T]{kind: reqSend, peer: to, val: v, tag: b.tag(v)}
	<-b.ps[from].resume
}

func (b *controlled[T]) recv(from, to int) T {
	b.ps[to].req <- request[T]{kind: reqRecv, peer: from}
	return <-b.ps[to].resume
}

func (b *controlled[T]) step(id int, name string) {
	b.ps[id].req <- request[T]{kind: reqStep, tag: name}
	<-b.ps[id].resume
}

// Options configures a controlled run.
type Options[T any] struct {
	// Trace, if non-nil, records every action of the interleaving.
	Trace *trace.Recorder
	// Tag renders a message for tracing; defaults to fmt.Sprint.
	Tag func(T) string
	// MaxActions aborts runs exceeding this many actions (0 = no limit);
	// a backstop against non-terminating networks in tests.
	MaxActions int
}

// RunControlled executes the processes under the given interleaving
// policy and returns their final states.  The run is fully
// deterministic given the policy.  It returns ErrDeadlock if the
// maximal interleaving leaves unfinished processes blocked.
func RunControlled[T, R any](procs []Proc[T, R], pol Policy, opt Options[T]) ([]R, error) {
	p := len(procs)
	if p == 0 {
		return nil, nil
	}
	if opt.Tag == nil {
		opt.Tag = func(v T) string { return fmt.Sprint(v) }
	}
	back := &controlled[T]{ps: make([]*pstate[T], p), tag: opt.Tag}
	results := make([]R, p)
	for i := range back.ps {
		back.ps[i] = &pstate[T]{
			req:    make(chan request[T]),
			resume: make(chan T),
		}
	}
	// Spawn coroutines; each waits for an initial resume before touching
	// user code, so exactly one process ever runs at a time.  A panic in
	// user code is captured and surfaced as a run error rather than
	// crashing the whole scheduler.
	for i := 0; i < p; i++ {
		i := i
		ctx := &Ctx[T]{id: i, p: p, ops: back}
		go func() {
			<-back.ps[i].resume
			done := request[T]{kind: reqDone}
			defer func() {
				if r := recover(); r != nil {
					done.err = fmt.Errorf("sched: process %d panicked: %v", i, r)
				}
				back.ps[i].req <- done
			}()
			results[i] = procs[i](ctx)
		}()
	}

	net := channel.NewQueueNet[T](p)
	var zero T
	var failure error
	// advance lets process i run to its next request and records it.
	advance := func(i int, v T) {
		back.ps[i].resume <- v
		r := <-back.ps[i].req
		if r.kind == reqDone {
			back.ps[i].done = true
			back.ps[i].pending = nil
			if r.err != nil && failure == nil {
				failure = r.err
			}
			opt.Trace.Add(i, trace.Done, -1, "")
			return
		}
		back.ps[i].pending = &r
		if r.kind == reqRecv && net.Chan(r.peer, i).Len() == 0 {
			opt.Trace.Add(i, trace.Block, r.peer, "")
		}
	}

	// Bring every process to its first request, in rank order.
	for i := 0; i < p; i++ {
		advance(i, zero)
	}

	enabled := make([]int, 0, p)
	actions := 0
	for {
		enabled = enabled[:0]
		allDone := true
		for i, ps := range back.ps {
			if ps.done {
				continue
			}
			allDone = false
			r := ps.pending
			if r == nil {
				continue
			}
			if r.kind == reqRecv && net.Chan(r.peer, i).Len() == 0 {
				ps.blocked = true
				continue
			}
			ps.blocked = false
			enabled = append(enabled, i)
		}
		if allDone {
			return results, failure
		}
		if len(enabled) == 0 {
			if failure != nil {
				// A panicked process explains the stall better than a
				// generic deadlock report.
				return results, failure
			}
			// Unblocking the coroutines is impossible; they leak by
			// design in this error path (tests construct few of them).
			// Report the wait-for relation so the cycle is visible.
			var waits []string
			for i, ps := range back.ps {
				if ps.done || ps.pending == nil {
					continue
				}
				if r := ps.pending; r.kind == reqRecv {
					waits = append(waits, fmt.Sprintf("P%d waits on P%d", i, r.peer))
				}
			}
			return results, fmt.Errorf("%w (after %d actions; %s)",
				ErrDeadlock, actions, strings.Join(waits, ", "))
		}
		pick := pol.Pick(enabled, actions)
		if !contains(enabled, pick) {
			panic(fmt.Sprintf("sched: policy %q picked disabled process %d from %v", pol.Name(), pick, enabled))
		}
		ps := back.ps[pick]
		r := *ps.pending
		ps.pending = nil
		switch r.kind {
		case reqSend:
			net.Send(pick, r.peer, r.val)
			opt.Trace.Add(pick, trace.Send, r.peer, r.tag)
			advance(pick, zero)
		case reqRecv:
			v := net.Recv(r.peer, pick)
			opt.Trace.Add(pick, trace.Recv, r.peer, opt.Tag(v))
			advance(pick, v)
		case reqStep:
			opt.Trace.Add(pick, trace.Step, -1, r.tag)
			advance(pick, zero)
		}
		actions++
		if opt.MaxActions > 0 && actions > opt.MaxActions {
			return results, fmt.Errorf("sched: exceeded MaxActions=%d; network may not terminate", opt.MaxActions)
		}
	}
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// concurrent is the free-running goroutine backend.
type concurrent[T any] struct {
	net *channel.Net[T]
	mu  sync.Mutex
	tr  *trace.Recorder
	tag func(T) string
}

func (b *concurrent[T]) send(from, to int, v T) {
	b.net.Send(from, to, v)
	if b.tr != nil {
		b.mu.Lock()
		b.tr.Add(from, trace.Send, to, b.tag(v))
		b.mu.Unlock()
	}
}

func (b *concurrent[T]) recv(from, to int) T {
	v := b.net.Recv(from, to)
	if b.tr != nil {
		b.mu.Lock()
		b.tr.Add(to, trace.Recv, from, b.tag(v))
		b.mu.Unlock()
	}
	return v
}

func (b *concurrent[T]) step(id int, name string) {
	if b.tr != nil {
		b.mu.Lock()
		b.tr.Add(id, trace.Step, -1, name)
		b.mu.Unlock()
	}
}

// RunConcurrent executes the processes as real goroutines over
// concurrent unbounded channels and returns their final states.  The
// Go runtime chooses the interleaving; by Theorem 1 the results equal
// those of any controlled run of the same (well-formed) network.  If
// opt.Trace is non-nil it records one legal interleaving order.
func RunConcurrent[T, R any](procs []Proc[T, R], opt Options[T]) []R {
	p := len(procs)
	if p == 0 {
		return nil
	}
	if opt.Tag == nil {
		opt.Tag = func(v T) string { return fmt.Sprint(v) }
	}
	back := &concurrent[T]{net: channel.NewChanNet[T](p), tr: opt.Trace, tag: opt.Tag}
	results := make([]R, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for i := 0; i < p; i++ {
		i := i
		ctx := &Ctx[T]{id: i, p: p, ops: back}
		go func() {
			defer wg.Done()
			results[i] = procs[i](ctx)
			if back.tr != nil {
				back.mu.Lock()
				back.tr.Add(i, trace.Done, -1, "")
				back.mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return results
}
