package sched

import (
	"fmt"
	"strconv"
	"strings"
)

// PolicySpec is the compact string form of a scheduling policy, used
// anywhere a policy crosses a process boundary: command-line flags,
// recorded schedule artifacts, and bench labels.  The grammar:
//
//	"lowest"         Lowest
//	"highest"        Highest
//	"rr"             RoundRobin (fair rotation by action count)
//	"alt"            Alternating
//	"lifo"           LIFO (adversarial most-recently-enabled)
//	"rand:SEED"      Random with the given int64 seed
//	"replay:FILE"    Replay of the Schedule JSON at FILE
//
// ParsePolicy and the policies' Spec methods round-trip: for every
// policy p built by ParsePolicy, ParsePolicy(PolicySpec(p)) constructs
// an equivalent policy.

// ParsePolicy builds a fresh policy from its PolicySpec string.  Every
// call returns a new instance, so stateful policies (lifo, rand,
// replay) never share state across runs.
func ParsePolicy(spec string) (Policy, error) {
	switch spec {
	case "lowest":
		return Lowest{}, nil
	case "highest":
		return Highest{}, nil
	case "rr", "round-robin":
		return NewRoundRobin(), nil
	case "alt", "alternating":
		return NewAlternating(), nil
	case "lifo":
		return NewLIFO(), nil
	}
	if arg, ok := strings.CutPrefix(spec, "rand:"); ok {
		seed, err := strconv.ParseInt(arg, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sched: policy spec %q: bad seed: %v", spec, err)
		}
		return NewRandom(seed), nil
	}
	if path, ok := strings.CutPrefix(spec, "replay:"); ok {
		if path == "" {
			return nil, fmt.Errorf("sched: policy spec %q: missing schedule file", spec)
		}
		s, err := LoadSchedule(path)
		if err != nil {
			return nil, fmt.Errorf("sched: policy spec %q: %v", spec, err)
		}
		r, err := s.Policy()
		if err != nil {
			return nil, fmt.Errorf("sched: policy spec %q: %v", spec, err)
		}
		r.path = path
		return r, nil
	}
	return nil, fmt.Errorf("sched: unknown policy spec %q (want lowest|highest|rr|alt|lifo|rand:SEED|replay:FILE)", spec)
}

// MustParsePolicy is ParsePolicy for statically known specs; it panics
// on error.
func MustParsePolicy(spec string) Policy {
	p, err := ParsePolicy(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// PolicySpec returns the spec string of a policy, the inverse of
// ParsePolicy for all policies it can construct.  Policies without a
// spec form fall back to their Name.
func PolicySpec(p Policy) string {
	if s, ok := p.(interface{ Spec() string }); ok {
		return s.Spec()
	}
	return p.Name()
}
