package sched

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

// nopOps is a backend stub so the Ctx hot path can be measured in
// isolation from scheduling machinery.
type nopOps[T any] struct{ zero T }

func (n *nopOps[T]) send(from, to int, v T)   {}
func (n *nopOps[T]) recv(from, to int) T      { return n.zero }
func (n *nopOps[T]) step(id int, name string) {}
func (n *nopOps[T]) flush(id int)             {}

// TestInstrumentationAllocs is the zero-overhead guarantee: the
// collector hook must add no allocations to Send/Recv/Step — neither
// when disabled (nil collector) nor when enabled with a byte sizer.
func TestInstrumentationAllocs(t *testing.T) {
	run := func(name string, ctx *Ctx[int]) {
		t.Run(name, func(t *testing.T) {
			if got := testing.AllocsPerRun(100, func() {
				ctx.Send(0, 7)
				ctx.Recv(0)
				ctx.Step("s")
			}); got != 0 {
				t.Errorf("Send/Recv/Step allocated %v times per run, want 0", got)
			}
		})
	}
	run("disabled", &Ctx[int]{id: 0, p: 1, ops: &nopOps[int]{}})
	run("enabled", &Ctx[int]{
		id: 0, p: 1, ops: &nopOps[int]{},
		col:   obs.New(1),
		bytes: func(int) int { return 8 },
	})
}

// countsOf projects a trace into per-rank send/recv/step totals.
func countsOf(tr interface{ Events() []trace.Event }, p int) (sends, recvs, steps []int64) {
	sends, recvs, steps = make([]int64, p), make([]int64, p), make([]int64, p)
	for _, e := range tr.Events() {
		switch e.Kind {
		case trace.Send:
			sends[e.Proc]++
		case trace.Recv:
			recvs[e.Proc]++
		case trace.Step:
			steps[e.Proc]++
		}
	}
	return
}

// TestCollectorMatchesTrace is the acceptance cross-check: on the same
// run, the obs counters and the trace recorder must agree rank by rank,
// for both runtimes.
func TestCollectorMatchesTrace(t *testing.T) {
	for _, mode := range []string{"controlled", "concurrent"} {
		t.Run(mode, func(t *testing.T) {
			tr := trace.New()
			col := obs.New(2)
			opt := Options[int]{
				Trace:     tr,
				Collector: col,
				MsgBytes:  func(int) int { return 8 },
			}
			var err error
			if mode == "controlled" {
				_, err = RunControlled(pingPong(100), Lowest{}, opt)
			} else {
				_, err = RunConcurrent(pingPong(100), opt)
			}
			if err != nil {
				t.Fatal(err)
			}
			col.Finish()
			sends, recvs, steps := countsOf(tr, 2)
			snap := col.Snapshot()
			for rank := 0; rank < 2; rank++ {
				r := snap.Ranks[rank]
				if r.Sends != sends[rank] || r.Recvs != recvs[rank] || r.Steps != steps[rank] {
					t.Errorf("rank %d: obs (s=%d r=%d st=%d) vs trace (s=%d r=%d st=%d)",
						rank, r.Sends, r.Recvs, r.Steps, sends[rank], recvs[rank], steps[rank])
				}
				if want := int64(8 * sends[rank]); r.BytesSent != want {
					t.Errorf("rank %d: bytes sent %d, want %d", rank, r.BytesSent, want)
				}
			}
			// pingPong(100) exact totals: each rank sends and receives 100.
			if snap.Ranks[0].Sends != 100 || snap.Ranks[1].Recvs != 100 {
				t.Errorf("unexpected totals: %+v", snap.Ranks)
			}
		})
	}
}

// TestBlockCountsSaneUnderConcurrency checks the spurious-wakeup guard:
// blocks are counted per logical wait, so they can never exceed the
// number of receives.
func TestBlockCountsSaneUnderConcurrency(t *testing.T) {
	col := obs.New(2)
	if _, err := RunConcurrent(pingPong(200), Options[int]{Collector: col}); err != nil {
		t.Fatal(err)
	}
	col.Finish()
	snap := col.Snapshot()
	for rank := 0; rank < 2; rank++ {
		r := snap.Ranks[rank]
		if r.Blocks > r.Recvs {
			t.Errorf("rank %d: %d blocks exceed %d receives", rank, r.Blocks, r.Recvs)
		}
	}
}
