// Package fault provides deterministic fault injection for the
// parallel runtime: process crashes at a chosen (rank, step), seeded
// perturbation of the controlled interleaving, seeded message-delivery
// delays for the concurrent runtime, and checkpoint-file corruption.
//
// Everything is seeded or exactly parameterised, so every failure
// reproduces bit-for-bit.  That matters because the paper's Theorem 1
// (every maximal fair interleaving of a well-formed network reaches the
// same final state) turns determinacy into an exact oracle for fault
// tolerance: a run that crashes, recovers from a checkpoint, and
// resumes must equal an uninterrupted run exactly, so recovery
// correctness is tested by bitwise comparison, not by statistical
// tolerance.
//
// The injectors compose with the runtime through its existing seams:
// Crash panics surface through the sched supervisor as errors wrapping
// *Crash; Jitter is a sched.Policy; DelaySends is a channel.Endpoint
// wrapper for sched.Options.WrapEndpoint / mesh.Options.WrapEndpoint.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/channel"
	"repro/internal/sched"
)

// Crash is the panic value of an injected process crash.  It is an
// error, so the sched supervisor wraps it with %w and errors.As can
// recognise an injected crash behind any number of runtime layers.
type Crash struct {
	Rank, Step int
}

// Error implements error.
func (c *Crash) Error() string {
	return fmt.Sprintf("fault: injected crash of rank %d at step %d", c.Rank, c.Step)
}

// AsCrash reports whether err wraps an injected *Crash and returns it.
func AsCrash(err error) (*Crash, bool) {
	var c *Crash
	if errors.As(err, &c) {
		return c, true
	}
	return nil, false
}

// Injector crashes one chosen rank the first time it reaches a chosen
// step.  It fires exactly once per Injector: after a recovery restart
// the same (rank, step) passes unharmed, which is precisely the
// transient-fault model a checkpoint/restart runtime must survive.
// A nil *Injector is inert, so call sites need no guards.
type Injector struct {
	rank, step int
	fired      atomic.Bool
}

// NewCrash returns an injector that crashes `rank` when it begins step
// `step` (0-based).
func NewCrash(rank, step int) *Injector {
	return &Injector{rank: rank, step: step}
}

// Check panics with *Crash if (rank, step) matches an armed injector.
// Application step loops call it once per rank per step.
func (in *Injector) Check(rank, step int) {
	if in == nil {
		return
	}
	if rank == in.rank && step == in.step && in.fired.CompareAndSwap(false, true) {
		panic(&Crash{Rank: rank, Step: step})
	}
}

// Fired reports whether the injector has already crashed its target.
func (in *Injector) Fired() bool {
	if in == nil {
		return false
	}
	return in.fired.Load()
}

// Cancelled is the panic value of a cooperative job cancellation: the
// rank observed an armed Canceller at a step boundary and aborted.  It
// is an error wrapping the cancellation reason, so errors.Is(err,
// reason) sees through any number of runtime layers.
type Cancelled struct {
	Rank, Step int
	Reason     error
}

// Error implements error.
func (c *Cancelled) Error() string {
	return fmt.Sprintf("fault: rank %d cancelled at step %d: %v", c.Rank, c.Step, c.Reason)
}

// Unwrap exposes the cancellation reason.
func (c *Cancelled) Unwrap() error { return c.Reason }

// AsCancelled reports whether err wraps a *Cancelled and returns it.
func AsCancelled(err error) (*Cancelled, bool) {
	var c *Cancelled
	if errors.As(err, &c) {
		return c, true
	}
	return nil, false
}

// Canceller is a cooperative cancellation token for running archetype
// programs: the owner arms it with Cancel(reason), and every rank's
// step loop polls it via Check, which panics with *Cancelled — the
// same step-boundary seam Injector uses, so cancellation surfaces
// through the runtime supervisors as an ordinary error.  A nil
// *Canceller is inert, so call sites need no guards.
//
// Checks happen only at step boundaries, so a rank already blocked in
// a receive does not observe the token; pair the Canceller with a
// transport-level abort (e.g. channel.SocketTransport.Abort) when the
// run must terminate even from inside a blocking operation.
type Canceller struct {
	reason atomic.Pointer[error]
}

// NewCanceller returns an unarmed cancellation token.
func NewCanceller() *Canceller { return &Canceller{} }

// Cancel arms the token with a reason.  The first reason wins; later
// calls are no-ops, so racing cancel paths (timeout vs drain) are safe.
func (c *Canceller) Cancel(reason error) {
	if reason == nil {
		reason = errors.New("cancelled")
	}
	c.reason.CompareAndSwap(nil, &reason)
}

// Err returns the cancellation reason, or nil while unarmed.
func (c *Canceller) Err() error {
	if c == nil {
		return nil
	}
	if p := c.reason.Load(); p != nil {
		return *p
	}
	return nil
}

// Check panics with *Cancelled if the token is armed.  Application
// step loops call it once per rank per step, next to Injector.Check.
func (c *Canceller) Check(rank, step int) {
	if c == nil {
		return
	}
	if p := c.reason.Load(); p != nil {
		panic(&Cancelled{Rank: rank, Step: step, Reason: *p})
	}
}

// Jitter is a sched.Policy wrapper that, with probability Prob per
// scheduling point, overrides the inner policy with a seeded random
// pick among the enabled processes.  Every pick stays inside the
// enabled set, so the perturbed interleaving remains a legal maximal
// interleaving — by Theorem 1 the final state must not change, which
// determinacy tests assert.
type Jitter struct {
	inner sched.Policy
	rng   *rand.Rand
	prob  float64
}

// NewJitter wraps inner with seeded reorder perturbation; prob in
// [0, 1] is the per-action override probability.
func NewJitter(inner sched.Policy, seed int64, prob float64) *Jitter {
	return &Jitter{inner: inner, rng: rand.New(rand.NewSource(seed)), prob: prob}
}

// Name implements sched.Policy.
func (j *Jitter) Name() string {
	return fmt.Sprintf("jitter(%s, p=%.2f)", j.inner.Name(), j.prob)
}

// Pick implements sched.Policy.
func (j *Jitter) Pick(enabled []int, step int) int {
	if j.rng.Float64() < j.prob {
		return enabled[j.rng.Intn(len(enabled))]
	}
	return j.inner.Pick(enabled, step)
}

// delayed wraps an endpoint so every send sleeps a seeded pseudo-random
// duration before delivering.  Per-channel FIFO order is untouched (the
// delay happens in the sender before the enqueue), so the fault stays
// inside the legal interleaving space of the infinite-slack model.
type delayed[T any] struct {
	channel.Endpoint[T]
	rng *rand.Rand
	max time.Duration
}

// Send implements channel.Endpoint.
func (d *delayed[T]) Send(v T) {
	// Single-writer channels: the sender owns d.rng, no lock needed.
	time.Sleep(time.Duration(d.rng.Int63n(int64(d.max) + 1)))
	d.Endpoint.Send(v)
}

// DelaySends returns an endpoint wrapper (for
// sched.Options.WrapEndpoint) that delays every delivery by a seeded
// pseudo-random duration in [0, max].  Each channel gets its own
// deterministic stream derived from (seed, from, to).
func DelaySends[T any](seed int64, max time.Duration) func(from, to int, e channel.Endpoint[T]) channel.Endpoint[T] {
	if max <= 0 {
		panic("fault: DelaySends requires a positive max delay")
	}
	return func(from, to int, e channel.Endpoint[T]) channel.Endpoint[T] {
		sub := seed ^ int64(from)*0x6C62272E07BB0142 ^ int64(to)*0x27D4EB2F165667C5
		return &delayed[T]{Endpoint: e, rng: rand.New(rand.NewSource(sub)), max: max}
	}
}

// FlipByte corrupts the file at path by XOR-ing the byte at offset with
// 0xFF.  A negative offset counts back from the end of the file.
func FlipByte(path string, offset int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if offset < 0 {
		offset += st.Size()
	}
	if offset < 0 || offset >= st.Size() {
		return fmt.Errorf("fault: flip offset %d outside file of %d bytes", offset, st.Size())
	}
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, offset); err != nil {
		return err
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b, offset); err != nil {
		return err
	}
	return f.Sync()
}

// Truncate cuts the file at path to n bytes; a negative n removes |n|
// bytes from the end.  It models a save interrupted mid-write.
func Truncate(path string, n int64) error {
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	if n < 0 {
		n += st.Size()
	}
	if n < 0 || n > st.Size() {
		return fmt.Errorf("fault: truncation to %d bytes outside file of %d bytes", n, st.Size())
	}
	return os.Truncate(path, n)
}
