package fault

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/sched"
)

// ring builds a token-ring network: rank 0 seeds a token, each rank
// increments and forwards it `rounds` times, final states are the last
// token values — deterministic under every legal interleaving.
func ring(p, rounds int) []sched.Proc[int, int] {
	procs := make([]sched.Proc[int, int], p)
	for i := 0; i < p; i++ {
		i := i
		procs[i] = func(ctx *sched.Ctx[int]) int {
			next, prev := (i+1)%p, (i+p-1)%p
			last := 0
			for r := 0; r < rounds; r++ {
				if i == 0 {
					ctx.Send(next, r*100)
					last = ctx.Recv(prev)
				} else {
					v := ctx.Recv(prev) + 1
					last = v
					ctx.Send(next, v)
				}
			}
			return last
		}
	}
	return procs
}

func TestInjectorFiresExactlyOnce(t *testing.T) {
	in := NewCrash(2, 5)
	// Non-matching coordinates never fire.
	in.Check(2, 4)
	in.Check(1, 5)
	if in.Fired() {
		t.Fatal("fired on non-matching coordinates")
	}
	// The match panics with *Crash.
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("no panic on match")
			}
			c, ok := r.(*Crash)
			if !ok || c.Rank != 2 || c.Step != 5 {
				t.Fatalf("wrong panic value: %v", r)
			}
		}()
		in.Check(2, 5)
	}()
	if !in.Fired() {
		t.Fatal("Fired not recorded")
	}
	// The transient-fault model: a rerun of the same step passes.
	in.Check(2, 5)
}

func TestNilInjectorInert(t *testing.T) {
	var in *Injector
	in.Check(0, 0)
	if in.Fired() {
		t.Fatal("nil injector fired")
	}
}

func TestAsCrashSeesThroughWrapping(t *testing.T) {
	inner := &Crash{Rank: 1, Step: 9}
	err := fmt.Errorf("layer two: %w", fmt.Errorf("layer one: %w", inner))
	c, ok := AsCrash(err)
	if !ok || c != inner {
		t.Fatalf("AsCrash failed through wrapping: %v %v", c, ok)
	}
	if _, ok := AsCrash(errors.New("unrelated")); ok {
		t.Fatal("AsCrash matched an unrelated error")
	}
}

// TestCrashSurfacesThroughSupervisor wires an injector into a process
// body and checks that the supervised runtime converts the panic into
// an error that AsCrash recognises.
func TestCrashSurfacesThroughSupervisor(t *testing.T) {
	in := NewCrash(1, 3)
	procs := make([]sched.Proc[int, int], 2)
	for i := 0; i < 2; i++ {
		i := i
		procs[i] = func(ctx *sched.Ctx[int]) int {
			for step := 0; step < 6; step++ {
				in.Check(i, step)
				ctx.Send(1-i, step)
				ctx.Recv(1 - i)
			}
			return 0
		}
	}
	_, err := sched.RunConcurrent(procs, sched.Options[int]{})
	if err == nil {
		t.Fatal("injected crash vanished")
	}
	c, ok := AsCrash(err)
	if !ok || c.Rank != 1 || c.Step != 3 {
		t.Fatalf("crash not recognisable through the supervisor: %v", err)
	}
}

// TestJitterStaysLegalAndDeterministic: every pick is from the enabled
// set, and the same seed reproduces the same pick sequence.
func TestJitterStaysLegalAndDeterministic(t *testing.T) {
	enabled := []int{3, 5, 9}
	a := NewJitter(sched.Lowest{}, 42, 0.5)
	b := NewJitter(sched.Lowest{}, 42, 0.5)
	for step := 0; step < 200; step++ {
		pa := a.Pick(enabled, step)
		pb := b.Pick(enabled, step)
		if pa != pb {
			t.Fatalf("step %d: same seed diverged: %d vs %d", step, pa, pb)
		}
		found := false
		for _, e := range enabled {
			if e == pa {
				found = true
			}
		}
		if !found {
			t.Fatalf("step %d: pick %d outside enabled set", step, pa)
		}
	}
}

// TestJitterPreservesDeterminacy is Theorem 1 exercised through the
// fault injector: seeded reorderings of the controlled interleaving
// leave the final states bitwise unchanged.
func TestJitterPreservesDeterminacy(t *testing.T) {
	want, err := sched.RunControlled(ring(4, 5), sched.Lowest{}, sched.Options[int]{})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 10; seed++ {
		pol := NewJitter(sched.Lowest{}, seed, 0.7)
		got, err := sched.RunControlled(ring(4, 5), pol, sched.Options[int]{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: jittered interleaving changed the result: %v vs %v", seed, got, want)
		}
	}
}

// TestDelaySendsPreservesDeterminacy: seeded delivery delays perturb
// the real-time interleaving but stay inside the infinite-slack model,
// so the concurrent results are unchanged.
func TestDelaySendsPreservesDeterminacy(t *testing.T) {
	want, err := sched.RunConcurrent(ring(3, 4), sched.Options[int]{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sched.RunConcurrent(ring(3, 4), sched.Options[int]{
		WrapEndpoint: DelaySends[int](7, 2*time.Millisecond),
		// Delays must not trip the watchdog on a healthy run.
		StallTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatalf("delayed run failed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("delayed run changed the result: %v vs %v", got, want)
	}
}

func TestDelaySendsRejectsBadMax(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive max accepted")
		}
	}()
	DelaySends[int](1, 0)
}

func TestFlipByte(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, []byte{1, 2, 3, 4}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := FlipByte(path, 1); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(path)
	if b[1] != 2^0xFF || b[0] != 1 {
		t.Fatalf("flip wrong: %v", b)
	}
	// Negative offsets count from the end; flipping twice restores.
	if err := FlipByte(path, -3); err != nil {
		t.Fatal(err)
	}
	b, _ = os.ReadFile(path)
	if b[1] != 2 {
		t.Fatalf("double flip did not restore: %v", b)
	}
	if err := FlipByte(path, 99); err == nil {
		t.Fatal("out-of-range offset accepted")
	}
	if err := FlipByte(path, -99); err == nil {
		t.Fatal("out-of-range negative offset accepted")
	}
}

func TestTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, make([]byte, 10), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Truncate(path, -3); err != nil {
		t.Fatal(err)
	}
	st, _ := os.Stat(path)
	if st.Size() != 7 {
		t.Fatalf("size %d after dropping 3 of 10", st.Size())
	}
	if err := Truncate(path, 2); err != nil {
		t.Fatal(err)
	}
	st, _ = os.Stat(path)
	if st.Size() != 2 {
		t.Fatalf("size %d after truncating to 2", st.Size())
	}
	if err := Truncate(path, 99); err == nil {
		t.Fatal("growing truncation accepted")
	}
	if err := Truncate(path, -99); err == nil {
		t.Fatal("over-truncation accepted")
	}
}

func TestCancellerNilAndUnarmed(t *testing.T) {
	var c *Canceller
	c.Check(0, 0) // nil receiver must be inert
	if c.Err() != nil {
		t.Fatal("nil canceller reports a reason")
	}
	c = NewCanceller()
	c.Check(1, 2) // unarmed must not panic
	if c.Err() != nil {
		t.Fatalf("unarmed canceller reports %v", c.Err())
	}
}

func TestCancellerFirstReasonWins(t *testing.T) {
	c := NewCanceller()
	first := errors.New("deadline exceeded")
	c.Cancel(first)
	c.Cancel(errors.New("drain"))
	if !errors.Is(c.Err(), first) {
		t.Fatalf("reason %v, want the first cancel", c.Err())
	}
}

func TestCancellerCheckPanicsTyped(t *testing.T) {
	c := NewCanceller()
	reason := errors.New("job timeout")
	c.Cancel(reason)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("armed Check did not panic")
		}
		cc, ok := r.(*Cancelled)
		if !ok {
			t.Fatalf("panic value %T, want *Cancelled", r)
		}
		if cc.Rank != 2 || cc.Step != 7 {
			t.Fatalf("cancelled at rank=%d step=%d, want 2/7", cc.Rank, cc.Step)
		}
		if !errors.Is(cc, reason) {
			t.Fatal("Cancelled does not unwrap to the reason")
		}
		if got, ok := AsCancelled(fmt.Errorf("wrapped: %w", cc)); !ok || got != cc {
			t.Fatal("AsCancelled failed through a wrapping layer")
		}
	}()
	c.Check(2, 7)
}
