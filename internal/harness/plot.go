package harness

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve of a text plot.
type Series struct {
	Name   string
	Marker byte
	X, Y   []float64
}

// Plot renders series as an ASCII chart — the form in which this
// reproduction regenerates the paper's Figure 2 plots.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area columns (default 48)
	Height int // plot area rows (default 14)
	Series []Series
}

// Render draws the plot.
func (p *Plot) Render() string {
	w, h := p.Width, p.Height
	if w <= 0 {
		w = 48
	}
	if h <= 0 {
		h = 14
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return p.Title + "\n(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	// Leave headroom so the top marker is visible.
	spanY := maxY - minY
	minY -= spanY * 0.05
	maxY += spanY * 0.05

	cells := make([][]byte, h)
	for r := range cells {
		cells[r] = []byte(strings.Repeat(" ", w))
	}
	place := func(x, y float64, m byte) {
		cx := int(math.Round((x - minX) / (maxX - minX) * float64(w-1)))
		cy := int(math.Round((y - minY) / (maxY - minY) * float64(h-1)))
		row := h - 1 - cy
		if row < 0 || row >= h || cx < 0 || cx >= w {
			return
		}
		cells[row][cx] = m
	}
	for _, s := range p.Series {
		// Connect consecutive points with interpolated markers of '.'
		for i := 0; i+1 < len(s.X); i++ {
			steps := w / 4
			for t := 1; t < steps; t++ {
				f := float64(t) / float64(steps)
				place(s.X[i]+(s.X[i+1]-s.X[i])*f, s.Y[i]+(s.Y[i+1]-s.Y[i])*f, '.')
			}
		}
	}
	for _, s := range p.Series {
		for i := range s.X {
			place(s.X[i], s.Y[i], s.Marker)
		}
	}

	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	for r, row := range cells {
		yTop := maxY - (maxY-minY)*float64(r)/float64(h-1)
		fmt.Fprintf(&b, "%10.3g |%s|\n", yTop, string(row))
	}
	fmt.Fprintf(&b, "%10s +%s+\n", "", strings.Repeat("-", w))
	fmt.Fprintf(&b, "%10s  %-*.4g%*.4g\n", "", w/2, minX, w-w/2, maxX)
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&b, "%10s  x: %s   y: %s\n", "", p.XLabel, p.YLabel)
	}
	var legend []string
	for _, s := range p.Series {
		legend = append(legend, fmt.Sprintf("%c = %s", s.Marker, s.Name))
	}
	fmt.Fprintf(&b, "%10s  legend: %s\n", "", strings.Join(legend, ", "))
	return b.String()
}

// FigurePlots renders a speedup table as the paper's Figure 2 pair of
// plots: execution time vs. processors (with the sequential and ideal
// curves) and speedup vs. processors (actual vs. perfect).
func FigurePlots(t *Table) string {
	if len(t.Rows) < 2 {
		return t.Format()
	}
	seq := t.Rows[0].Seconds
	var px, actualT, idealT, actualS, perfectS []float64
	for _, r := range t.Rows[1:] {
		px = append(px, float64(r.P))
		actualT = append(actualT, r.Seconds)
		idealT = append(idealT, seq/float64(r.P))
		actualS = append(actualS, r.Speedup)
		perfectS = append(perfectS, float64(r.P))
	}
	timePlot := Plot{
		Title:  t.Title + " — execution time",
		XLabel: "processors", YLabel: "seconds",
		Series: []Series{
			{Name: "actual", Marker: 'a', X: px, Y: actualT},
			{Name: "ideal", Marker: 'i', X: px, Y: idealT},
		},
	}
	speedPlot := Plot{
		Title:  t.Title + " — speedup",
		XLabel: "processors", YLabel: "speedup",
		Series: []Series{
			{Name: "actual", Marker: 'a', X: px, Y: actualS},
			{Name: "perfect", Marker: 'p', X: px, Y: perfectS},
		},
	}
	return timePlot.Render() + "\n" + speedPlot.Render()
}
