package harness

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// EffortRow is one transformation step of the ease-of-use proxy.
type EffortRow struct {
	Step         string
	PaperDays    string // the paper's reported person-days
	LinesAdded   int
	LinesRemoved int
}

// EffortReport is the E7 result: the paper reports human effort in
// person-days; an automated reproduction cannot re-measure people, so
// we report, as a proxy, the textual delta each refinement step makes
// to a representative listing of the application.  The proxy preserves
// the paper's qualitative claim: the strategy/SSP steps dominate the
// effort, and the SSP-to-parallel step is nearly free (it is mechanical).
type EffortReport struct {
	Version string
	Rows    []EffortRow
}

// String renders the report.
func (r *EffortReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== Ease-of-use proxy (E7), Version %s ===\n", r.Version)
	fmt.Fprintf(&b, "%-42s %12s %14s\n", "transformation step", "paper (days)", "listing delta")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-42s %12s %9s\n", row.Step, row.PaperDays,
			fmt.Sprintf("+%d/-%d", row.LinesAdded, row.LinesRemoved))
	}
	return b.String()
}

// Listings of the application at each refinement stage.  These are the
// pseudo-code equivalents of the paper's Fortran stages, kept honest to
// the transformations of §4.4: indexing data by simulated process,
// restructuring into compute/exchange alternation, splitting host/grid
// blocks, adjusting loop bounds, and inserting archetype calls; the
// final parallel stage merely swaps the archetype library version.
const (
	listingSequential = `read grid parameters from input file
read material description from input file
for each cell (i,j,k): compute update coefficients
for n = 1 to nsteps
  for each cell: update Ex, Ey, Ez from H neighbours
  add source pulse to Ez at source cell
  for each cell: update Hx, Hy, Hz from E neighbours
  record probe value
  for each surface point: accumulate far-field potentials
write final fields to output file
write far-field potentials to output file`

	listingSSP = `host: read grid parameters from input file
host: read material description from input file
host: for each cell (i,j,k): compute update coefficients
scatter coefficients from host to grid processes [archetype]
for n = 1 to nsteps
  exchange H boundary planes with neighbours [archetype]
  for each local cell: update Ex, Ey, Ez from H neighbours
  if process owns source cell: add source pulse to Ez
  exchange E boundary planes with neighbours [archetype]
  for each local cell: update Hx, Hy, Hz from E neighbours
  if process owns probe cell: record probe value
  for each local surface point: accumulate local far-field sums
combine local far-field sums by reduction [archetype]
broadcast probe series from owner [archetype]
gather final fields from grid processes to host [archetype]
host: write final fields to output file
host: write far-field potentials to output file`

	listingParallel = `host: read grid parameters from input file
host: read material description from input file
host: for each cell (i,j,k): compute update coefficients
scatter coefficients from host to grid processes [archetype-mp]
for n = 1 to nsteps
  exchange H boundary planes with neighbours [archetype-mp]
  for each local cell: update Ex, Ey, Ez from H neighbours
  if process owns source cell: add source pulse to Ez
  exchange E boundary planes with neighbours [archetype-mp]
  for each local cell: update Hx, Hy, Hz from E neighbours
  if process owns probe cell: record probe value
  for each local surface point: accumulate local far-field sums
combine local far-field sums by reduction [archetype-mp]
broadcast probe series from owner [archetype-mp]
gather final fields from grid processes to host [archetype-mp]
host: write final fields to output file
host: write far-field potentials to output file`
)

// RunEffort produces the E7 report for the given version ("A" or "C").
// Version A's listings simply omit the far-field lines.
func RunEffort(version string) *EffortReport {
	seq, ssp, par := listingSequential, listingSSP, listingParallel
	daysStrategy, daysSSP, daysMP := "2", "8", "<1"
	if version == "A" {
		strip := func(s string) string {
			var keep []string
			for _, line := range strings.Split(s, "\n") {
				if strings.Contains(line, "far-field") {
					continue
				}
				keep = append(keep, line)
			}
			return strings.Join(keep, "\n")
		}
		seq, ssp, par = strip(seq), strip(ssp), strip(par)
		daysStrategy, daysSSP, daysMP = "<1", "5", "<1"
	}
	addSSP, remSSP := core.DiffLines(seq, ssp)
	addPar, remPar := core.DiffLines(ssp, par)
	return &EffortReport{
		Version: version,
		Rows: []EffortRow{
			{Step: "determine parallelization strategy", PaperDays: daysStrategy},
			{Step: "sequential -> simulated-parallel", PaperDays: daysSSP, LinesAdded: addSSP, LinesRemoved: remSSP},
			{Step: "simulated-parallel -> message-passing", PaperDays: daysMP, LinesAdded: addPar, LinesRemoved: remPar},
		},
	}
}
