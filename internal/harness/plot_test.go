package harness

import (
	"strings"
	"testing"
)

func TestPlotRenderBasics(t *testing.T) {
	p := Plot{
		Title:  "test plot",
		XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "linear", Marker: 'l', X: []float64{1, 2, 4, 8}, Y: []float64{1, 2, 4, 8}},
			{Name: "flat", Marker: 'f', X: []float64{1, 2, 4, 8}, Y: []float64{3, 3, 3, 3}},
		},
	}
	out := p.Render()
	for _, want := range []string{"test plot", "l = linear", "f = flat", "x: x   y: y"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Count(out, "l") < 4 {
		t.Fatalf("markers not drawn:\n%s", out)
	}
}

func TestPlotEmptyAndDegenerate(t *testing.T) {
	empty := Plot{Title: "empty"}
	if !strings.Contains(empty.Render(), "no data") {
		t.Fatal("empty plot should say so")
	}
	// A single point (degenerate ranges) must not panic or divide by 0.
	single := Plot{Series: []Series{{Name: "pt", Marker: '*', X: []float64{3}, Y: []float64{5}}}}
	if !strings.Contains(single.Render(), "*") {
		t.Fatal("single point should render")
	}
}

func TestFigurePlots(t *testing.T) {
	tab := &Table{
		Title: "fig",
		Rows: []Row{
			{Label: "Sequential", P: 1, Seconds: 8, Speedup: 1},
			{Label: "P=2", P: 2, Seconds: 4.4, Speedup: 1.8, Ideal: 2},
			{Label: "P=4", P: 4, Seconds: 2.5, Speedup: 3.2, Ideal: 4},
			{Label: "P=8", P: 8, Seconds: 1.6, Speedup: 5.0, Ideal: 8},
		},
	}
	out := FigurePlots(tab)
	for _, want := range []string{"execution time", "speedup", "a = actual", "i = ideal", "p = perfect"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Degenerate table falls back to the plain format.
	small := &Table{Title: "tiny", Rows: []Row{{Label: "Sequential", P: 1, Seconds: 1, Speedup: 1}}}
	if !strings.Contains(FigurePlots(small), "tiny") {
		t.Fatal("fallback missing")
	}
}
