package harness

import (
	"fmt"
	"strings"

	"repro/internal/sched"
	"repro/internal/trace"
)

// Figure1Report reproduces the paper's Figure 1: the correspondence
// between the parallel and simulated-parallel versions of a two-process
// compute / send / receive / compute program.  It shows the two
// interleavings side by side and verifies they are permutation-
// equivalent (same per-process action sequences, same per-channel
// message sequences) and reach the same final state.
type Figure1Report struct {
	SimTrace, ParTrace string
	Equivalent         bool
	SameFinalState     bool
}

// String renders the report.
func (r *Figure1Report) String() string {
	var b strings.Builder
	b.WriteString("=== Figure 1 correspondence (E8) ===\n")
	b.WriteString("simulated-parallel interleaving:\n")
	indent(&b, r.SimTrace)
	b.WriteString("a real-parallel interleaving:\n")
	indent(&b, r.ParTrace)
	fmt.Fprintf(&b, "permutation-equivalent: %v\n", r.Equivalent)
	fmt.Fprintf(&b, "same final state:       %v\n", r.SameFinalState)
	return b.String()
}

func indent(b *strings.Builder, s string) {
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		b.WriteString("  ")
		b.WriteString(line)
		b.WriteByte('\n')
	}
}

// figure1Procs is the program of the paper's Figure 1: each of two
// processes computes, exchanges a value with the other, and computes
// again.
func figure1Procs() []sched.Proc[float64, float64] {
	body := func(ctx *sched.Ctx[float64]) float64 {
		other := 1 - ctx.ID()
		x := float64(ctx.ID()+1) * 1.5
		ctx.Step("compute")
		ctx.Send(other, x*2)
		y := ctx.Recv(other)
		ctx.Step("compute")
		return x + y
	}
	return []sched.Proc[float64, float64]{body, body}
}

// RunFigure1 executes the Figure 1 program under the simulated-parallel
// order (process 0 runs to blocking, then process 1) and under a
// scrambled order standing in for real parallel execution, and checks
// the correspondence.
func RunFigure1() (*Figure1Report, error) {
	simTr := trace.New()
	simRes, err := sched.RunControlled(figure1Procs(), sched.Lowest{},
		sched.Options[float64]{Trace: simTr})
	if err != nil {
		return nil, err
	}
	parTr := trace.New()
	parRes, err := sched.RunControlled(figure1Procs(), sched.NewAlternating(),
		sched.Options[float64]{Trace: parTr})
	if err != nil {
		return nil, err
	}
	same := len(simRes) == len(parRes)
	for i := range simRes {
		if simRes[i] != parRes[i] {
			same = false
		}
	}
	return &Figure1Report{
		SimTrace:       simTr.Format(),
		ParTrace:       parTr.Format(),
		Equivalent:     simTr.EquivalentTo(parTr, 2),
		SameFinalState: same,
	}, nil
}
