package harness

import (
	"fmt"
	"strings"

	"repro/internal/fdtd"
	"repro/internal/grid"
	"repro/internal/mesh"
	"repro/internal/sched"
)

// DeterminacyReport is the E4 result for the full application: the
// archetype program executed under many distinct maximal interleavings,
// all required to reach the same final state (Theorem 1).
type DeterminacyReport struct {
	Spec     fdtd.Spec
	P        int
	Runs     []string
	Diverged []string
}

// Deterministic reports whether every interleaving agreed.
func (r *DeterminacyReport) Deterministic() bool { return len(r.Diverged) == 0 }

// String renders the report.
func (r *DeterminacyReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== Determinacy (E4): FDTD archetype program, P=%d ===\n", r.P)
	fmt.Fprintf(&b, "interleavings tried: %s\n", strings.Join(r.Runs, ", "))
	if r.Deterministic() {
		fmt.Fprintf(&b, "verdict: DETERMINATE — all %d maximal interleavings reached the same final state\n", len(r.Runs))
	} else {
		fmt.Fprintf(&b, "verdict: NOT DETERMINATE — diverging runs: %s\n", strings.Join(r.Diverged, ", "))
	}
	return b.String()
}

// RunDeterminacy executes the archetype FDTD program under every
// default scheduling policy plus several free-running parallel
// executions and verifies that the final state (fields, probe, far
// field) is identical across all of them.
func RunDeterminacy(spec fdtd.Spec, p, parReps int) (*DeterminacyReport, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	slabs := grid.SlabDecompose3(spec.NX, spec.NY, spec.NZ, p, grid.AxisX)
	opt := fdtd.DefaultOptions()
	rep := &DeterminacyReport{Spec: spec, P: p}
	var ref *fdtd.Result

	check := func(label string, res *fdtd.Result) {
		rep.Runs = append(rep.Runs, label)
		if ref == nil {
			ref = res
			return
		}
		ok := ref.NearFieldEqual(res)
		if spec.IsVersionC() {
			ok = ok && ref.FarFieldEqual(res)
		}
		if !ok {
			rep.Diverged = append(rep.Diverged, label)
		}
	}

	for _, pol := range sched.DefaultPolicies(4) {
		results, err := mesh.RunControlledPolicy(p, pol, opt.Mesh, func(c *mesh.Comm) *fdtd.Result {
			return fdtdSPMD(c, spec, slabs, opt)
		})
		if err != nil {
			return nil, fmt.Errorf("harness: policy %s: %w", pol.Name(), err)
		}
		check(pol.Name(), results[0])
	}
	for k := 0; k < parReps; k++ {
		res, err := fdtd.RunArchetype(spec, p, mesh.Par, opt)
		if err != nil {
			return nil, err
		}
		check(fmt.Sprintf("goroutines#%d", k), res)
	}
	return rep, nil
}

// fdtdSPMD adapts the fdtd package's SPMD body for policy-controlled
// runs.  fdtd.RunArchetype wires the same body to the Sim/Par runtimes;
// re-running it here under arbitrary policies is what makes E4 a test
// of Theorem 1 rather than of one fixed schedule.
func fdtdSPMD(c *mesh.Comm, spec fdtd.Spec, slabs []grid.Slab, opt fdtd.Options) *fdtd.Result {
	return fdtd.SPMD(c, spec, slabs, opt)
}
