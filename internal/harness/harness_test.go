package harness

import (
	"strings"
	"testing"

	"repro/internal/fdtd"
	"repro/internal/machine"
)

func TestRunSpeedupSmall(t *testing.T) {
	tab, err := RunSpeedup(SpeedupConfig{
		Spec:  fdtd.SpecSmallA(),
		Ps:    []int{2, 4},
		Model: machine.IBMSP(),
		Opt:   fdtd.DefaultOptions(),
		Title: "small speedup",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0].Speedup != 1 {
		t.Fatal("sequential row should have speedup 1")
	}
	for _, r := range tab.Rows[1:] {
		if r.Seconds <= 0 || r.Speedup <= 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
	out := tab.Format()
	for _, want := range []string{"small speedup", "Sequential", "Parallel, P=2", "ideal"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestSpeedupShapeOnRealisticSize(t *testing.T) {
	// Large enough that compute dominates latency per slab: the shape
	// criteria of the paper (monotone, sub-linear) must hold.  Uses the
	// uncalibrated preset model so the result is host-independent.
	spec := fdtd.SpecTable1()
	spec.Steps = 8 // the profile per step is identical; 8 steps suffice
	tab, err := RunSpeedup(SpeedupConfig{
		Spec:         spec,
		Ps:           []int{2, 4, 8},
		Model:        machine.IBMSP(),
		Opt:          fdtd.DefaultOptions(),
		Title:        "shape check",
		CalibrateOff: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if msg := tab.CheckShape(); msg != "" {
		t.Fatalf("shape violated: %s\n%s", msg, tab.Format())
	}
	if eff := tab.MinEfficiency(); eff <= 0 || eff >= 1 {
		t.Fatalf("efficiency out of range: %v", eff)
	}
}

func TestSunScalesWorseThanSP(t *testing.T) {
	spec := fdtd.SpecTable1()
	spec.Steps = 8
	run := func(m machine.Model) *Table {
		tab, err := RunSpeedup(SpeedupConfig{
			Spec: spec, Ps: []int{4}, Model: m,
			Opt: fdtd.DefaultOptions(), Title: "x", CalibrateOff: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	sun := run(machine.SunEthernet())
	sp := run(machine.IBMSP())
	if sun.Rows[1].Efficiency >= sp.Rows[1].Efficiency {
		t.Fatalf("Sun efficiency %v should be below SP %v",
			sun.Rows[1].Efficiency, sp.Rows[1].Efficiency)
	}
}

func TestRunCorrectnessVersionA(t *testing.T) {
	rep, err := RunCorrectness(fdtd.SpecSmallA(), 3, 2)
	if err != nil {
		t.Fatalf("%v\n%v", err, rep)
	}
	if !rep.NearFieldIdentical || !rep.ParallelMatchesSSP {
		t.Fatalf("correctness failed:\n%s", rep)
	}
	if rep.Version != "A" {
		t.Fatalf("version = %s", rep.Version)
	}
	if !strings.Contains(rep.String(), "identical to previous stage") {
		t.Fatalf("report:\n%s", rep)
	}
}

func TestRunCorrectnessVersionC(t *testing.T) {
	rep, err := RunCorrectness(fdtd.SpecSmall(), 4, 2)
	if err != nil {
		t.Fatalf("%v\n%v", err, rep)
	}
	if !rep.NearFieldIdentical {
		t.Fatal("near field must be identical")
	}
	if rep.FarFieldIdentical {
		t.Fatal("far field should diverge for Version C at P=4")
	}
	if rep.FarFieldMaxRelDiff <= 0 || rep.FarFieldMaxRelDiff > 1e-6 {
		t.Fatalf("far-field deviation out of expected band: %g", rep.FarFieldMaxRelDiff)
	}
	if !rep.ParallelMatchesSSP {
		t.Fatal("parallel must match SSP")
	}
}

func TestRunFarFieldAnalysis(t *testing.T) {
	a, err := RunFarFieldAnalysis(fdtd.SpecSmall(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.NaiveMaxRelDev <= 0 {
		t.Fatal("naive reordering should deviate")
	}
	if a.FixedMaxRelDev > 1e-12 {
		t.Fatalf("compensated far field too inaccurate: %g", a.FixedMaxRelDev)
	}
	if a.SyntheticWide <= a.SyntheticNarrow {
		t.Fatal("wide-range data must be more order-sensitive")
	}
	if a.DynamicRangeDecades <= 1 {
		t.Fatalf("far-field potentials should span decades, got %.2f", a.DynamicRangeDecades)
	}
	if !strings.Contains(a.String(), "decades") {
		t.Fatal("report should mention dynamic range")
	}
	if _, err := RunFarFieldAnalysis(fdtd.SpecSmallA(), 2); err == nil {
		t.Fatal("Version A has no far field to analyse")
	}
}

func TestRunEffort(t *testing.T) {
	for _, v := range []string{"A", "C"} {
		rep := RunEffort(v)
		if len(rep.Rows) != 3 {
			t.Fatalf("rows = %d", len(rep.Rows))
		}
		ssp, mp := rep.Rows[1], rep.Rows[2]
		if ssp.LinesAdded+ssp.LinesRemoved <= mp.LinesAdded+mp.LinesRemoved {
			t.Fatalf("version %s: SSP step should dominate the delta: %+v vs %+v", v, ssp, mp)
		}
		if !strings.Contains(rep.String(), "paper (days)") {
			t.Fatal("report header missing")
		}
	}
	// Version C's far-field handling makes its SSP delta larger.
	a, c := RunEffort("A"), RunEffort("C")
	if c.Rows[1].LinesAdded <= a.Rows[1].LinesAdded {
		t.Fatal("version C should require a larger SSP transformation")
	}
}

func TestRunFigure1(t *testing.T) {
	rep, err := RunFigure1()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equivalent || !rep.SameFinalState {
		t.Fatalf("Figure 1 correspondence failed:\n%s", rep)
	}
	out := rep.String()
	for _, want := range []string{"simulated-parallel interleaving", "send->P1", "recv<-P0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunDeterminacy(t *testing.T) {
	rep, err := RunDeterminacy(fdtd.SpecSmall(), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Deterministic() {
		t.Fatalf("archetype program must be determinate:\n%s", rep)
	}
	if len(rep.Runs) < 8 {
		t.Fatalf("too few interleavings tried: %v", rep.Runs)
	}
	if !strings.Contains(rep.String(), "DETERMINATE") {
		t.Fatalf("report:\n%s", rep)
	}
	bad := fdtd.SpecSmall()
	bad.Steps = 0
	if _, err := RunDeterminacy(bad, 2, 0); err == nil {
		t.Fatal("invalid spec should error")
	}
}

func TestCheckShapeCatchesViolations(t *testing.T) {
	tab := &Table{Rows: []Row{
		{Label: "seq", P: 1, Speedup: 1},
		{Label: "p2", P: 2, Speedup: 1.8},
		{Label: "p4", P: 4, Speedup: 1.5}, // non-monotone
	}}
	if tab.CheckShape() == "" {
		t.Fatal("non-monotone speedup should be flagged")
	}
	tab.Rows[2].Speedup = 4.2 // super-linear
	if tab.CheckShape() == "" {
		t.Fatal("super-linear speedup should be flagged")
	}
	tab.Rows[2].Speedup = 3.1
	if msg := tab.CheckShape(); msg != "" {
		t.Fatalf("valid shape flagged: %s", msg)
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Rows: []Row{
		{Label: "Sequential", P: 1, Seconds: 2, Speedup: 1, Efficiency: 1},
		{Label: "Parallel, P=2", P: 2, Seconds: 1.2, Speedup: 1.67, Efficiency: 0.83, Ideal: 2},
	}}
	out := tab.CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "label,procs") {
		t.Fatalf("header: %s", lines[0])
	}
	if !strings.Contains(lines[2], `"Parallel, P=2",2,1.2,1.67,0.83,2`) {
		t.Fatalf("row: %s", lines[2])
	}
	// Sequential row has an empty ideal column.
	if !strings.HasSuffix(lines[1], ",") {
		t.Fatalf("sequential ideal should be empty: %s", lines[1])
	}
}

func TestTableBenchEntries(t *testing.T) {
	tab := &Table{
		Title: "t",
		Rows: []Row{
			{Label: "Sequential", P: 1, Seconds: 8, Speedup: 1, Efficiency: 1},
			{Label: "Parallel, P=4", P: 4, Seconds: 2.5, Speedup: 3.2, Efficiency: 0.8},
		},
	}
	entries := tab.BenchEntries("table1")
	if len(entries) != 6 {
		t.Fatalf("got %d entries, want 6", len(entries))
	}
	byName := map[string]float64{}
	for _, e := range entries {
		byName[e.Name] = e.Value
	}
	if byName["table1/P=4/speedup"] != 3.2 || byName["table1/P=1/seconds"] != 8 {
		t.Errorf("unexpected entries: %v", byName)
	}
}
