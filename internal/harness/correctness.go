package harness

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/fdtd"
	"repro/internal/fsum"
	"repro/internal/mesh"
)

// CorrectnessReport is the outcome of experiments E1-E3 for one
// application version.
type CorrectnessReport struct {
	Version             string
	Pipeline            *core.Report[*fdtd.Result]
	NearFieldIdentical  bool
	FarFieldIdentical   bool // meaningful only for Version C
	FarFieldMaxRelDiff  float64
	ParallelMatchesSSP  bool
	ParallelRepetitions int
}

// String renders the report.
func (r *CorrectnessReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== Correctness, Version %s ===\n", r.Version)
	b.WriteString(r.Pipeline.String())
	fmt.Fprintf(&b, "near-field SSP identical to sequential: %v\n", r.NearFieldIdentical)
	if r.Version == "C" {
		fmt.Fprintf(&b, "far-field SSP identical to sequential:  %v (max relative deviation %.3g)\n",
			r.FarFieldIdentical, r.FarFieldMaxRelDiff)
	}
	fmt.Fprintf(&b, "parallel identical to SSP over %d executions: %v\n",
		r.ParallelRepetitions, r.ParallelMatchesSSP)
	return b.String()
}

// RunCorrectness executes experiments E1-E3 on the given spec with the
// given process count: it builds the three-version refinement pipeline
// (sequential → simulated-parallel → parallel), verifies each step, and
// repeats the parallel execution several times to confirm "identical
// results on the first and every execution".
func RunCorrectness(spec fdtd.Spec, p int, reps int) (*CorrectnessReport, error) {
	version := "A"
	if spec.IsVersionC() {
		version = "C"
	}
	rep := &CorrectnessReport{Version: version, ParallelRepetitions: reps}

	opt := fdtd.DefaultOptions()
	pipeline := &core.Pipeline[*fdtd.Result]{
		Name: "fdtd version " + version,
		// Stage equality for the pipeline is near-field equality; the
		// far field is assessed separately because the SSP stage is
		// declared non-exact for it.
		Equal: func(a, b *fdtd.Result) bool { return a.NearFieldEqual(b) },
		Stages: []core.Stage[*fdtd.Result]{
			{
				Name: "original sequential", Kind: core.Sequential,
				Run: func() (*fdtd.Result, error) { return fdtd.RunSequential(spec) },
			},
			{
				Name: "simulated-parallel (SSP)", Kind: core.SimulatedParallel, Exact: true,
				Run: func() (*fdtd.Result, error) { return fdtd.RunArchetype(spec, p, mesh.Sim, opt) },
			},
			{
				Name: "message-passing parallel", Kind: core.Parallel, Exact: true,
				Run: func() (*fdtd.Result, error) { return fdtd.RunArchetype(spec, p, mesh.Par, opt) },
			},
		},
	}
	pr, err := pipeline.Verify()
	if err != nil {
		return nil, err
	}
	rep.Pipeline = pr
	if !pr.OK() {
		return rep, fmt.Errorf("harness: refinement pipeline failed:\n%s", pr)
	}
	seq, ssp := pr.Results[0], pr.Results[1]
	rep.NearFieldIdentical = seq.NearFieldEqual(ssp)
	if spec.IsVersionC() {
		rep.FarFieldIdentical = seq.FarFieldEqual(ssp)
		rep.FarFieldMaxRelDiff = seq.FarFieldMaxRelDiff(ssp)
	}
	rep.ParallelMatchesSSP = true
	for i := 0; i < reps; i++ {
		par, err := fdtd.RunArchetype(spec, p, mesh.Par, opt)
		if err != nil {
			return rep, err
		}
		if !ssp.NearFieldEqual(par) || (spec.IsVersionC() && !ssp.FarFieldEqual(par)) {
			rep.ParallelMatchesSSP = false
		}
	}
	return rep, nil
}

// FarFieldAnalysis quantifies the mechanism behind the far-field
// divergence (the paper's footnote 2: the summands "ranged over many
// orders of magnitude") and demonstrates the fix.
type FarFieldAnalysis struct {
	// DynamicRangeDecades is the spread of far-field contribution
	// magnitudes in the actual FDTD run (log10 max/min over non-zero
	// potentials).
	DynamicRangeDecades float64
	// NaiveMaxRelDev is the SSP-vs-sequential deviation with the
	// paper's naive reordered summation.
	NaiveMaxRelDev float64
	// FixedMaxRelDev is the deviation of the compensated far field
	// from the high-accuracy sequential reference.
	FixedMaxRelDev float64
	// SyntheticWide and SyntheticNarrow show the generic effect on
	// synthetic data: block-reordering error for wide- and narrow-
	// dynamic-range summands.
	SyntheticWide, SyntheticNarrow float64
}

// String renders the analysis.
func (a *FarFieldAnalysis) String() string {
	var b strings.Builder
	b.WriteString("=== Far-field divergence analysis (E2) ===\n")
	fmt.Fprintf(&b, "far-field potential dynamic range: %.1f decades\n", a.DynamicRangeDecades)
	fmt.Fprintf(&b, "naive reordered sum, max relative deviation:       %.3g\n", a.NaiveMaxRelDev)
	fmt.Fprintf(&b, "compensated sum vs accurate reference, deviation:  %.3g\n", a.FixedMaxRelDev)
	fmt.Fprintf(&b, "synthetic 16-decade data, block-reorder deviation: %.3g\n", a.SyntheticWide)
	fmt.Fprintf(&b, "synthetic  1-decade data, block-reorder deviation: %.3g\n", a.SyntheticNarrow)
	return b.String()
}

// RunFarFieldAnalysis performs the E2 analysis on the given Version C
// spec.
func RunFarFieldAnalysis(spec fdtd.Spec, p int) (*FarFieldAnalysis, error) {
	if !spec.IsVersionC() {
		return nil, fmt.Errorf("harness: far-field analysis requires a Version C spec")
	}
	seq, err := fdtd.RunSequential(spec)
	if err != nil {
		return nil, err
	}
	naive, err := fdtd.RunArchetype(spec, p, mesh.Sim, fdtd.DefaultOptions())
	if err != nil {
		return nil, err
	}
	ref, err := fdtd.RunSequentialOpts(spec, true)
	if err != nil {
		return nil, err
	}
	fixedOpt := fdtd.DefaultOptions()
	fixedOpt.FarFieldCompensated = true
	fixed, err := fdtd.RunArchetype(spec, p, mesh.Sim, fixedOpt)
	if err != nil {
		return nil, err
	}

	a := &FarFieldAnalysis{
		NaiveMaxRelDev: seq.FarFieldMaxRelDiff(naive),
		FixedMaxRelDev: ref.FarFieldMaxRelDiff(fixed),
	}
	// Dynamic range of the potentials themselves.
	minMag, maxMag := 0.0, 0.0
	first := true
	for _, series := range [][]float64{seq.FarA, seq.FarF} {
		for _, v := range series {
			m := v
			if m < 0 {
				m = -m
			}
			if m == 0 {
				continue
			}
			if first || m < minMag {
				minMag = m
			}
			if first || m > maxMag {
				maxMag = m
			}
			first = false
		}
	}
	if !first && minMag > 0 {
		a.DynamicRangeDecades = math.Log10(maxMag / minMag)
	}
	rng := rand.New(rand.NewSource(42))
	wide := fsum.Sensitivity(fsum.WideRange(20000, 16, rng), []int{2, 4, 8}, 5, rng)
	narrow := fsum.Sensitivity(fsum.Narrow(20000, rng), []int{2, 4, 8}, 5, rng)
	a.SyntheticWide = wide.MaxRelDev
	a.SyntheticNarrow = narrow.MaxRelDev
	return a, nil
}
