// Package harness runs the repository's reproduction experiments and
// formats their results in the shape of the paper's tables and figures.
//
// Experiment identifiers (see DESIGN.md §4):
//
//	E1  near-field correctness (SSP ≡ sequential, bitwise)
//	E2  far-field divergence (reordered FP summation) + the fix
//	E3  parallel ≡ SSP, every execution (Theorem 1 in practice)
//	E4  determinacy of arbitrary interleavings
//	E5  Table 1 (Version C, 33³, 128 steps, network of Suns)
//	E6  Figure 2 (Version A, 66³, 512 steps, IBM SP)
//	E7  ease-of-use proxy (refinement-stage deltas)
//	E8  Figure 1 correspondence (simulated vs parallel ordering)
package harness

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/fdtd"
	"repro/internal/machine"
	"repro/internal/mesh"
	"repro/internal/obs"
)

// Row is one line of a speedup table.
type Row struct {
	Label      string
	P          int
	Seconds    float64
	Speedup    float64
	Efficiency float64
	Ideal      float64 // ideal speedup (== P); 0 to omit
}

// Table is a formatted experiment result.
type Table struct {
	Title   string
	Machine string
	Rows    []Row
	Notes   []string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	if t.Machine != "" {
		fmt.Fprintf(&b, "machine model: %s\n", t.Machine)
	}
	hasIdeal := false
	for _, r := range t.Rows {
		if r.Ideal > 0 {
			hasIdeal = true
		}
	}
	if hasIdeal {
		fmt.Fprintf(&b, "%-16s %12s %10s %12s %8s\n", "", "time (s)", "speedup", "efficiency", "ideal")
	} else {
		fmt.Fprintf(&b, "%-16s %12s %10s %12s\n", "", "time (s)", "speedup", "efficiency")
	}
	for _, r := range t.Rows {
		if hasIdeal {
			ideal := ""
			if r.Ideal > 0 {
				ideal = fmt.Sprintf("%.0f", r.Ideal)
			}
			fmt.Fprintf(&b, "%-16s %12.3f %10.2f %12.2f %8s\n", r.Label, r.Seconds, r.Speedup, r.Efficiency, ideal)
		} else {
			fmt.Fprintf(&b, "%-16s %12.3f %10.2f %12.2f\n", r.Label, r.Seconds, r.Speedup, r.Efficiency)
		}
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header + one row
// per entry), for downstream plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("label,procs,seconds,speedup,efficiency,ideal\n")
	for _, r := range t.Rows {
		ideal := ""
		if r.Ideal > 0 {
			ideal = fmt.Sprintf("%g", r.Ideal)
		}
		fmt.Fprintf(&b, "%q,%d,%g,%g,%g,%s\n",
			r.Label, r.P, r.Seconds, r.Speedup, r.Efficiency, ideal)
	}
	return b.String()
}

// BenchEntries flattens the table into BENCH-file entries (seconds,
// speedup, efficiency per row) under the given name prefix, so the
// experiment tables land in the same perf-trajectory artifacts as the
// observability run reports (obs.WriteBenchFile).
func (t *Table) BenchEntries(prefix string) []obs.BenchEntry {
	var out []obs.BenchEntry
	for _, r := range t.Rows {
		base := fmt.Sprintf("%s/P=%d", prefix, r.P)
		out = append(out,
			obs.BenchEntry{Name: base + "/seconds", Value: r.Seconds, Unit: "s"},
			obs.BenchEntry{Name: base + "/speedup", Value: r.Speedup, Unit: "x"},
			obs.BenchEntry{Name: base + "/efficiency", Value: r.Efficiency, Unit: "ratio"},
		)
	}
	return out
}

// SpeedupConfig configures a speedup experiment.
type SpeedupConfig struct {
	Spec  fdtd.Spec
	Ps    []int // parallel process counts (sequential row is implicit)
	Model machine.Model
	Opt   fdtd.Options
	Title string
	// Calibrate anchors the model's per-work-unit cost to this host's
	// measured sequential throughput (default true behaviour when
	// CalibrateOff is false).
	CalibrateOff bool
}

// RunSpeedup reproduces a speedup table/figure: it times the original
// sequential program on this host, calibrates the machine model's
// compute cost from that measurement (unless disabled), executes the
// archetype program for each process count while recording its real
// work/message profile, and reports the model's simulated execution
// times and the resulting speedups.
func RunSpeedup(cfg SpeedupConfig) (*Table, error) {
	if len(cfg.Ps) == 0 {
		cfg.Ps = []int{2, 4, 8}
	}
	start := time.Now()
	seq, err := fdtd.RunSequential(cfg.Spec)
	if err != nil {
		return nil, err
	}
	seqWall := time.Since(start).Seconds()
	model := cfg.Model
	if !cfg.CalibrateOff {
		model = model.Calibrate(seq.Work, seqWall)
	}
	seqModel := seq.Work * model.SecPerWork

	table := &Table{
		Title:   cfg.Title,
		Machine: model.Name,
		Rows: []Row{{
			Label: "Sequential", P: 1, Seconds: seqModel,
			Speedup: 1, Efficiency: 1,
		}},
	}
	if !cfg.CalibrateOff {
		table.Notes = append(table.Notes, fmt.Sprintf(
			"compute cost calibrated from this host's sequential run: %.3f s for %.0f work units",
			seqWall, seq.Work))
	}
	table.Notes = append(table.Notes,
		"parallel times are simulated from real work/message profiles (see DESIGN.md substitutions)")

	for _, p := range cfg.Ps {
		opt := cfg.Opt
		opt.Mesh.Tally = machine.NewTally(p)
		arch, err := fdtd.RunArchetype(cfg.Spec, p, mesh.Sim, opt)
		if err != nil {
			return nil, err
		}
		if arch.Work != seq.Work {
			return nil, fmt.Errorf("harness: work mismatch at p=%d: %v vs %v", p, arch.Work, seq.Work)
		}
		parTime := model.Time(opt.Mesh.Tally)
		sp := machine.Speedup(seqModel, parTime)
		table.Rows = append(table.Rows, Row{
			Label:      fmt.Sprintf("Parallel, P=%d", p),
			P:          p,
			Seconds:    parTime,
			Speedup:    sp,
			Efficiency: machine.Efficiency(sp, p),
			Ideal:      float64(p),
		})
	}
	return table, nil
}

// Table1 reproduces the paper's Table 1: execution times and speedups
// for the electromagnetics code (Version C), 33x33x33 grid, 128 steps,
// on a network-of-Suns machine model, P in {2, 4, 8}.
func Table1() (*Table, error) {
	return RunSpeedup(SpeedupConfig{
		Spec:  fdtd.SpecTable1(),
		Ps:    []int{2, 4, 8},
		Model: machine.SunEthernet(),
		Opt:   fdtd.DefaultOptions(),
		Title: "Table 1: electromagnetics code (Version C), 33x33x33 grid, 128 steps",
	})
}

// Figure2 reproduces the paper's Figure 2: execution times and
// speedups for Version A, 66x66x66 grid, 512 steps, on an IBM SP
// machine model, with the ideal-speedup series alongside.
func Figure2() (*Table, error) {
	return RunSpeedup(SpeedupConfig{
		Spec:  fdtd.SpecFigure2(),
		Ps:    []int{2, 4, 8, 16},
		Model: machine.IBMSP(),
		Opt:   fdtd.DefaultOptions(),
		Title: "Figure 2: electromagnetics code (Version A), 66x66x66 grid, 512 steps",
	})
}

// CheckShape verifies the paper's qualitative claims on a speedup
// table: speedups are > 1, monotonically increasing with P, and
// sub-linear (below ideal).  It returns a description of the first
// violation, or "".
func (t *Table) CheckShape() string {
	prev := 1.0
	for _, r := range t.Rows[1:] {
		if r.Speedup <= 1 {
			return fmt.Sprintf("P=%d: speedup %.2f not > 1", r.P, r.Speedup)
		}
		if r.Speedup <= prev {
			return fmt.Sprintf("P=%d: speedup %.2f did not increase (prev %.2f)", r.P, r.Speedup, prev)
		}
		if r.Speedup >= float64(r.P) {
			return fmt.Sprintf("P=%d: speedup %.2f not sub-linear", r.P, r.Speedup)
		}
		prev = r.Speedup
	}
	return ""
}

// MinEfficiency returns the lowest parallel efficiency in the table.
func (t *Table) MinEfficiency() float64 {
	min := math.Inf(1)
	for _, r := range t.Rows[1:] {
		if r.Efficiency < min {
			min = r.Efficiency
		}
	}
	return min
}
