package mesh

import (
	"errors"
	"strings"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/fault"
	"repro/internal/grid"
)

// ghostSnapshot runs a multi-iteration ghost refresh and returns every
// rank's boundary planes — the values that actually crossed channels.
func ghostSnapshot(t *testing.T, p, iters int, mode Mode, opt Options) [][]float64 {
	t.Helper()
	const nx, ny, nz = 13, 5, 4
	slabs := grid.SlabDecompose3(nx, ny, nz, p, grid.AxisX)
	res, err := Run(p, mode, opt, func(c *Comm) []float64 {
		g := slabs[c.Rank()].NewLocal3(1)
		g.FillFunc(func(i, j, k int) float64 {
			return float64(1000*slabs[c.Rank()].ToGlobal(i) + 10*j + k)
		})
		for it := 0; it < iters; it++ {
			c.ExchangeGhostPlanes(g, grid.AxisX)
		}
		var out []float64
		out = append(out, g.PackPlane(grid.AxisX, -1, nil)...)
		out = append(out, g.PackPlane(grid.AxisX, g.NX(), nil)...)
		return out
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assertSameGhosts(t *testing.T, label string, want, got [][]float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: rank count %d vs %d", label, len(got), len(want))
	}
	for r := range want {
		if len(want[r]) != len(got[r]) {
			t.Fatalf("%s rank %d: ghost lengths differ", label, r)
		}
		for i := range want[r] {
			if want[r][i] != got[r][i] {
				t.Fatalf("%s rank %d: ghost %d differs: %v vs %v", label, r, i, got[r][i], want[r][i])
			}
		}
	}
}

// TestSocketExchangeIdentity: the same ghost refresh must produce
// bitwise-identical boundary planes under Sim, in-process Par, and Par
// over a real loopback socket mesh (tcp and unix) — Theorem 1 carried
// across the wire.
func TestSocketExchangeIdentity(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		want := ghostSnapshot(t, p, 3, Sim, DefaultOptions())
		inproc := ghostSnapshot(t, p, 3, Par, DefaultOptions())
		assertSameGhosts(t, fmt.Sprintf("P=%d in-proc", p), want, inproc)
		for _, network := range []string{"tcp", "unix"} {
			tr, err := channel.NewLoopbackMesh(p, network, WireCodec(), channel.SocketOptions{})
			if err != nil {
				t.Fatalf("P=%d %s loopback: %v", p, network, err)
			}
			opt := DefaultOptions()
			opt.Transport = tr
			got := ghostSnapshot(t, p, 3, Par, opt)
			tr.Close()
			assertSameGhosts(t, fmt.Sprintf("P=%d socket/%s", p, network), want, got)
		}
	}
}

// TestSocketTransportSimRejected: external transports are a Par-mode
// feature; Sim must refuse rather than silently ignore one.
func TestSocketTransportSimRejected(t *testing.T) {
	tr, err := channel.NewLoopbackMesh(2, "tcp", WireCodec(), channel.SocketOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	opt := DefaultOptions()
	opt.Transport = tr
	if _, err := Run(2, Sim, opt, func(c *Comm) int { return 0 }); err == nil {
		t.Fatal("Sim accepted an external transport")
	}
}

// TestSocketFlushCoalescing counter-asserts the batching contract: one
// exchange phase queues all of a neighbour's frames and pushes them
// with exactly one flush (and, under the iov limit, one syscall) — no
// per-message writes.
func TestSocketFlushCoalescing(t *testing.T) {
	const (
		p     = 2
		iters = 6
	)
	stats := channel.NewNetStats(p)
	tr, err := channel.NewLoopbackMesh(p, "tcp", WireCodec(), channel.SocketOptions{Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	opt := DefaultOptions()
	opt.Transport = tr
	ghostSnapshot(t, p, iters, Par, opt)
	for _, link := range [][2]int{{0, 1}, {1, 0}} {
		from, to := link[0], link[1]
		flushes := stats.Flushes(from, to)
		if flushes > iters {
			t.Errorf("link %d->%d: %d flushes for %d exchange phases (want <= 1 per phase)",
				from, to, flushes, iters)
		}
		if flushes == 0 {
			t.Errorf("link %d->%d: no flushes recorded", from, to)
		}
		if sys := stats.Syscalls(from, to); sys != flushes {
			t.Errorf("link %d->%d: %d syscalls for %d flushes (frames per phase fit one writev)",
				from, to, sys, flushes)
		}
		if frames := stats.WireFrames(from, to); frames < int64(iters) {
			t.Errorf("link %d->%d: only %d frames for %d exchanges", from, to, frames, iters)
		}
	}
}

// TestSocketDelayDeterminacy: seeded per-send delay and jitter on top
// of the socket transport perturbs timing only — every schedule must
// land on the same boundary values (determinacy under fault injection,
// now across a real wire).
func TestSocketDelayDeterminacy(t *testing.T) {
	want := ghostSnapshot(t, 3, 2, Sim, DefaultOptions())
	for _, seed := range []int64{1, 42, 99} {
		tr, err := channel.NewLoopbackMesh(3, "tcp", WireCodec(), channel.SocketOptions{})
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultOptions()
		opt.Transport = tr
		opt.WrapEndpoint = fault.DelaySends[Msg](seed, 2*time.Millisecond)
		got := ghostSnapshot(t, 3, 2, Par, opt)
		tr.Close()
		assertSameGhosts(t, fmt.Sprintf("seed %d", seed), want, got)
	}
}

// TestRunWorkerDialMesh drives the multi-process code path without
// processes: P goroutines, each with its own per-rank DialMesh
// transport and its own RunWorker call, must reproduce the Sim
// boundary planes bitwise.
func TestRunWorkerDialMesh(t *testing.T) {
	const (
		p          = 3
		iters      = 2
		nx, ny, nz = 13, 5, 4
	)
	want := ghostSnapshot(t, p, iters, Sim, DefaultOptions())

	dir := t.TempDir()
	addrs := make([]string, p)
	for i := range addrs {
		addrs[i] = filepath.Join(dir, fmt.Sprintf("rank-%d.sock", i))
	}
	slabs := grid.SlabDecompose3(nx, ny, nz, p, grid.AxisX)
	got := make([][]float64, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr, err := channel.DialMesh("unix", addrs, r, WireCodec(), channel.SocketOptions{})
			if err != nil {
				errs[r] = err
				return
			}
			defer tr.Close()
			got[r], errs[r] = RunWorker(r, tr, DefaultOptions(), func(c *Comm) []float64 {
				g := slabs[c.Rank()].NewLocal3(1)
				g.FillFunc(func(i, j, k int) float64 {
					return float64(1000*slabs[c.Rank()].ToGlobal(i) + 10*j + k)
				})
				for it := 0; it < iters; it++ {
					c.ExchangeGhostPlanes(g, grid.AxisX)
				}
				var out []float64
				out = append(out, g.PackPlane(grid.AxisX, -1, nil)...)
				out = append(out, g.PackPlane(grid.AxisX, g.NX(), nil)...)
				return out
			})
		}()
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	assertSameGhosts(t, "worker mesh", want, got)
}

// TestRunWorkerAbortedTransport: a worker blocked in a receive on an
// aborted transport must return a typed error (*channel.TransportError
// carrying the abort reason), not hang — the error path the job
// service's per-job timeout rides.
func TestRunWorkerAbortedTransport(t *testing.T) {
	tr, err := channel.NewLoopbackMesh(2, "unix", WireCodec(), channel.SocketOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	reason := errors.New("per-job deadline exceeded")
	done := make(chan error, 1)
	go func() {
		// Rank 0 blocks forever: rank 1 never runs, so the receive can
		// only be satisfied by the abort.
		_, err := RunWorker(0, tr, DefaultOptions(), func(c *Comm) float64 {
			return c.recv(1)[0]
		})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the worker reach the blocking receive
	tr.Abort(reason)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("worker on an aborted transport returned nil error")
		}
		var te *channel.TransportError
		if !errors.As(err, &te) {
			t.Fatalf("error %v (%T) does not wrap *channel.TransportError", err, err)
		}
		if !errors.Is(err, reason) {
			t.Fatalf("error %v does not carry the abort reason", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker hung on an aborted transport")
	}
}

// TestRunWorkerPeerClosed: when a peer closes its transport without
// sending, a worker blocked on that channel must fail with a typed
// transport error naming the closed peer, not hang.
func TestRunWorkerPeerClosed(t *testing.T) {
	dir := t.TempDir()
	addrs := []string{filepath.Join(dir, "r0.sock"), filepath.Join(dir, "r1.sock")}

	done := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		tr, err := channel.DialMesh("unix", addrs, 0, WireCodec(), channel.SocketOptions{})
		if err != nil {
			done <- err
			return
		}
		defer tr.Close()
		_, err = RunWorker(0, tr, DefaultOptions(), func(c *Comm) float64 {
			return c.recv(1)[0] // rank 1 exits without ever sending
		})
		done <- err
	}()
	go func() {
		defer wg.Done()
		tr, err := channel.DialMesh("unix", addrs, 1, WireCodec(), channel.SocketOptions{})
		if err != nil {
			return
		}
		time.Sleep(20 * time.Millisecond) // let rank 0 block first
		tr.Close()
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("worker whose peer vanished returned nil error")
		}
		var te *channel.TransportError
		if !errors.As(err, &te) {
			t.Fatalf("error %v (%T) does not wrap *channel.TransportError", err, err)
		}
		if !strings.Contains(err.Error(), "peer closed") {
			t.Fatalf("error %q does not identify the closed peer", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker hung after its peer closed")
	}
	wg.Wait()
}
