package mesh

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/machine"
)

func TestSendUpXFillsLowerGhost(t *testing.T) {
	const nx, ny, nz, p = 8, 3, 2, 4
	slabs := grid.SlabDecompose3(nx, ny, nz, p, grid.AxisX)
	for _, combine := range []bool{true, false} {
		for _, mode := range bothModes {
			opt := DefaultOptions()
			opt.Combine = combine
			res, err := Run(p, mode, opt, func(c *Comm) [2]float64 {
				sl := slabs[c.Rank()]
				a := sl.NewLocal3(1)
				b := sl.NewLocal3(1)
				a.FillFunc(func(i, j, k int) float64 { return float64(sl.ToGlobal(i)) })
				b.FillFunc(func(i, j, k int) float64 { return float64(100 + sl.ToGlobal(i)) })
				c.SendUpX(a, b)
				return [2]float64{a.At(-1, 1, 1), b.At(-1, 1, 1)}
			})
			if err != nil {
				t.Fatalf("combine=%v %v: %v", combine, mode, err)
			}
			for r := 1; r < p; r++ {
				lo := slabs[r].R.Lo
				if res[r][0] != float64(lo-1) || res[r][1] != float64(100+lo-1) {
					t.Fatalf("combine=%v %v proc %d: ghosts = %v", combine, mode, r, res[r])
				}
			}
		}
	}
}

func TestSendDownXFillsUpperGhost(t *testing.T) {
	const nx, ny, nz, p = 9, 2, 2, 3
	slabs := grid.SlabDecompose3(nx, ny, nz, p, grid.AxisX)
	res, err := Run(p, Sim, DefaultOptions(), func(c *Comm) float64 {
		sl := slabs[c.Rank()]
		g := sl.NewLocal3(1)
		g.FillFunc(func(i, j, k int) float64 { return float64(sl.ToGlobal(i)) })
		c.SendDownX(g)
		return g.At(g.NX(), 0, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p-1; r++ {
		if res[r] != float64(slabs[r].R.Hi) {
			t.Fatalf("proc %d upper ghost = %v want %v", r, res[r], float64(slabs[r].R.Hi))
		}
	}
}

func TestDirectionalHalvesMessagesVsFullExchange(t *testing.T) {
	const nx, ny, nz, p = 8, 2, 2, 4
	slabs := grid.SlabDecompose3(nx, ny, nz, p, grid.AxisX)
	count := func(f func(c *Comm, g *grid.G3)) int {
		ta := machine.NewTally(p)
		opt := DefaultOptions()
		opt.Tally = ta
		_, err := Run(p, Sim, opt, func(c *Comm) int {
			g := slabs[c.Rank()].NewLocal3(1)
			f(c, g)
			return 0
		})
		if err != nil {
			t.Fatal(err)
		}
		return ta.TotalMessages()
	}
	full := count(func(c *Comm, g *grid.G3) { c.ExchangeGhostPlanesX(g) })
	up := count(func(c *Comm, g *grid.G3) { c.SendUpX(g) })
	if up*2 != full {
		t.Fatalf("directional should halve messages: up=%d full=%d", up, full)
	}
}

func TestDirectionalCombiningMergesGrids(t *testing.T) {
	const p = 3
	slabs := grid.SlabDecompose3(9, 2, 2, p, grid.AxisX)
	count := func(combine bool) int {
		ta := machine.NewTally(p)
		opt := DefaultOptions()
		opt.Combine = combine
		opt.Tally = ta
		_, err := Run(p, Sim, opt, func(c *Comm) int {
			a := slabs[c.Rank()].NewLocal3(1)
			b := slabs[c.Rank()].NewLocal3(1)
			c.SendUpX(a, b)
			return 0
		})
		if err != nil {
			t.Fatal(err)
		}
		return ta.TotalMessages()
	}
	combined, uncombined := count(true), count(false)
	if uncombined != 2*combined {
		t.Fatalf("two grids should combine into one message: %d vs %d", combined, uncombined)
	}
}

func TestDirectionalEmptyAndErrors(t *testing.T) {
	_, err := Run(2, Sim, DefaultOptions(), func(c *Comm) int {
		c.SendUpX() // no grids: still a phase, no messages
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	// Ghostless grid panics.
	_, err = Run(2, Sim, DefaultOptions(), func(c *Comm) bool {
		defer func() { recover() }()
		g := grid.New3(4, 2, 2, 0)
		c.SendUpX(g)
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	// Mismatched y-z extents panic.
	_, err = Run(2, Sim, DefaultOptions(), func(c *Comm) bool {
		defer func() { recover() }()
		a := grid.New3G(4, 2, 2, 1, 0, 0)
		b := grid.New3G(4, 3, 2, 1, 0, 0)
		c.SendUpX(a, b)
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDirectionalSingleProcessNoop(t *testing.T) {
	slabs := grid.SlabDecompose3(4, 2, 2, 1, grid.AxisX)
	res, err := Run(1, Sim, DefaultOptions(), func(c *Comm) float64 {
		g := slabs[0].NewLocal3(1)
		g.Fill(3)
		c.SendUpX(g)
		c.SendDownX(g)
		return g.At(0, 0, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 3 {
		t.Fatal("single-process exchange should be a no-op")
	}
}
