package mesh

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/channel"
)

// WireCodec serialises archetype messages for socket transports: the
// payload is the raw little-endian float64 bit pattern of Msg.Data, so
// the decoded values are bit-for-bit the sent ones — NaN payloads,
// signed zeros and all — which is what keeps Theorem 1's bitwise
// determinacy intact across the wire.
//
// Both directions stay on the message arena: encoding consumes the
// message's pooled buffer (ownership passed to the transport at Send,
// exactly as the in-process receiver would consume it) and decoding
// packs into a fresh getBuf buffer that the receiving operation recycles
// after unpacking.  Steady-state exchange therefore allocates nothing on
// either side of the socket.
func WireCodec() channel.Codec[Msg] {
	return channel.Codec[Msg]{
		Append: func(dst []byte, m Msg) []byte {
			for _, v := range m.Data {
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
			}
			putBuf(m.Data)
			return dst
		},
		Decode: func(src []byte) (Msg, error) {
			if len(src)%8 != 0 {
				return Msg{}, fmt.Errorf("mesh: wire payload of %d bytes is not a float64 vector", len(src))
			}
			data := getBuf(len(src) / 8)
			for i := range data {
				data[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
			}
			return Msg{Data: data}, nil
		},
	}
}
