package mesh

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/fsum"
	"repro/internal/machine"
	"repro/internal/sched"
)

var bothModes = []Mode{Sim, Par}

func TestRunRanksAndModes(t *testing.T) {
	for _, mode := range bothModes {
		res, err := Run(4, mode, DefaultOptions(), func(c *Comm) int {
			return c.Rank()*10 + c.P()
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		want := []int{4, 14, 24, 34}
		if !reflect.DeepEqual(res, want) {
			t.Fatalf("%v: res = %v", mode, res)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(0, Sim, DefaultOptions(), func(c *Comm) int { return 0 }); err == nil {
		t.Fatal("p=0 should error")
	}
	if _, err := Run(2, Mode(99), DefaultOptions(), func(c *Comm) int { return 0 }); err == nil {
		t.Fatal("bad mode should error")
	}
	if _, err := RunControlledPolicy(0, sched.Lowest{}, DefaultOptions(), func(c *Comm) int { return 0 }); err == nil {
		t.Fatal("p=0 should error")
	}
}

func TestModeString(t *testing.T) {
	if Sim.String() != "simulated-parallel" || Par.String() != "parallel" {
		t.Fatal("mode names")
	}
	if Mode(7).String() == "" {
		t.Fatal("unknown mode should render")
	}
}

func TestBarrierCompletes(t *testing.T) {
	for _, mode := range bothModes {
		for _, p := range []int{1, 2, 3, 5, 8} {
			res, err := Run(p, mode, DefaultOptions(), func(c *Comm) int {
				c.Barrier()
				c.Barrier()
				return 1
			})
			if err != nil {
				t.Fatalf("%v p=%d: %v", mode, p, err)
			}
			if len(res) != p {
				t.Fatalf("res = %v", res)
			}
		}
	}
}

func TestBroadcastScalar(t *testing.T) {
	for _, mode := range bothModes {
		for _, p := range []int{1, 2, 3, 4, 7} {
			for root := 0; root < p; root++ {
				res, err := Run(p, mode, DefaultOptions(), func(c *Comm) float64 {
					v := float64(c.Rank() + 100)
					return c.Broadcast(v, root)
				})
				if err != nil {
					t.Fatalf("%v p=%d root=%d: %v", mode, p, root, err)
				}
				for i, v := range res {
					if v != float64(root+100) {
						t.Fatalf("%v p=%d root=%d: proc %d got %v", mode, p, root, i, v)
					}
				}
			}
		}
	}
}

func TestBroadcastVec(t *testing.T) {
	res, err := Run(5, Sim, DefaultOptions(), func(c *Comm) []float64 {
		vals := []float64{float64(c.Rank()), float64(c.Rank() * 2), -1}
		return c.BroadcastVec(vals, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 4, -1}
	for i, v := range res {
		if !reflect.DeepEqual(v, want) {
			t.Fatalf("proc %d: %v", i, v)
		}
	}
}

func TestBroadcastBadRoot(t *testing.T) {
	_, err := Run(2, Sim, DefaultOptions(), func(c *Comm) float64 {
		defer func() { recover() }()
		return c.Broadcast(1, 5)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceExactData(t *testing.T) {
	for _, alg := range []ReduceAlg{RecursiveDoubling, AllToOne} {
		for _, op := range []ReduceOp{OpSum, OpMax, OpMin} {
			for _, p := range []int{1, 2, 3, 4, 5, 8, 9} {
				res, err := Run(p, Sim, DefaultOptions(), func(c *Comm) float64 {
					return c.AllReduceAlg(float64(c.Rank()+1), op, alg)
				})
				if err != nil {
					t.Fatalf("%v/%s p=%d: %v", alg, op.Name, p, err)
				}
				// Sequential fold in rank order.
				want := 1.0
				for i := 2; i <= p; i++ {
					want = op.F(want, float64(i))
				}
				for i, v := range res {
					if v != want {
						t.Fatalf("%v/%s p=%d: proc %d got %v want %v", alg, op.Name, p, i, v, want)
					}
				}
			}
		}
	}
}

func TestAllReduceVecElementwise(t *testing.T) {
	for _, alg := range []ReduceAlg{RecursiveDoubling, AllToOne} {
		res, err := Run(4, Par, DefaultOptions(), func(c *Comm) []float64 {
			vals := []float64{float64(c.Rank()), 1, float64(-c.Rank())}
			return c.AllReduceVecAlg(vals, OpSum, alg)
		})
		if err != nil {
			t.Fatal(err)
		}
		want := []float64{6, 4, -6}
		for i, v := range res {
			if !reflect.DeepEqual(v, want) {
				t.Fatalf("%v: proc %d got %v", alg, i, v)
			}
		}
	}
}

func TestAllToOneMatchesSequentialPartialOrder(t *testing.T) {
	// The all-to-one reduction combines partials in rank order — the
	// same order as fsum.Naive over the block partials.  This is the
	// property the "fixed" far-field implementation relies on.
	rng := rand.New(rand.NewSource(2))
	xs := fsum.WideRange(4096, 14, rng)
	for _, p := range []int{2, 4, 8} {
		partials := fsum.BlockPartials(xs, p)
		res, err := Run(p, Sim, DefaultOptions(), func(c *Comm) float64 {
			return c.AllReduceAlg(partials[c.Rank()], OpSum, AllToOne)
		})
		if err != nil {
			t.Fatal(err)
		}
		want := fsum.Naive(partials)
		for i, v := range res {
			if v != want {
				t.Fatalf("p=%d proc %d: %v != %v", p, i, v, want)
			}
		}
	}
}

func TestReductionAlgorithmsAgreeOnExactDisagreeOnWide(t *testing.T) {
	// On exact integer data the two algorithms must agree; on wide-
	// range data their different combination orders generally differ —
	// the mechanism behind the paper's far-field divergence.
	run := func(p int, vals []float64, alg ReduceAlg) float64 {
		res, err := Run(p, Sim, DefaultOptions(), func(c *Comm) float64 {
			return c.AllReduceAlg(vals[c.Rank()], OpSum, alg)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res[0]
	}
	exact := []float64{1, 2, 3, 4, 5, 6, 7}
	if run(7, exact, RecursiveDoubling) != run(7, exact, AllToOne) {
		t.Fatal("algorithms must agree on exact data")
	}
	rng := rand.New(rand.NewSource(4))
	found := false
	for trial := 0; trial < 20 && !found; trial++ {
		wide := fsum.WideRange(7, 16, rng)
		if run(7, wide, RecursiveDoubling) != run(7, wide, AllToOne) {
			found = true
		}
	}
	if !found {
		t.Fatal("expected the combination orders to differ on some wide-range data")
	}
}

func TestSimAndParBitwiseIdentical(t *testing.T) {
	// A mini bulk-synchronous program mixing work, reductions, and
	// broadcasts: by Theorem 1, Sim and Par must agree bitwise.
	prog := func(c *Comm) []float64 {
		x := float64(c.Rank()+1) * 1.7
		out := make([]float64, 0, 6)
		for step := 0; step < 3; step++ {
			c.Work(10)
			x = x*1.1 + float64(step)
			sum := c.AllReduce(x, OpSum)
			max := c.AllReduce(x, OpMax)
			x += sum / (max + 2)
			g := c.Broadcast(x, step%c.P())
			out = append(out, sum, g)
		}
		return out
	}
	sim, err := Run(5, Sim, DefaultOptions(), prog)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 5; rep++ {
		par, err := Run(5, Par, DefaultOptions(), prog)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sim, par) {
			t.Fatalf("rep %d: Sim and Par diverged:\n%v\n%v", rep, sim, par)
		}
	}
}

func TestArbitraryPoliciesAgree(t *testing.T) {
	prog := func(c *Comm) float64 {
		v := float64(c.Rank())
		v = c.AllReduce(v*1.25, OpSum)
		c.Barrier()
		return c.Broadcast(v+float64(c.Rank()), 1)
	}
	ref, err := Run(4, Sim, DefaultOptions(), prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range sched.DefaultPolicies(6) {
		got, err := RunControlledPolicy(4, pol, DefaultOptions(), prog)
		if err != nil {
			t.Fatalf("policy %s: %v", pol.Name(), err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("policy %s diverged", pol.Name())
		}
	}
}

func TestTallyRecordsWorkAndMessages(t *testing.T) {
	ta := machine.NewTally(3)
	opt := DefaultOptions()
	opt.Tally = ta
	_, err := Run(3, Sim, opt, func(c *Comm) int {
		c.Work(5)
		c.AllReduce(1, OpSum)
		c.Work(2)
		c.Barrier()
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ta.TotalWork(); got != 21 {
		t.Fatalf("TotalWork = %v, want 21", got)
	}
	if ta.TotalMessages() == 0 {
		t.Fatal("no messages recorded")
	}
	if ta.Phases() < 2 {
		t.Fatalf("Phases = %d", ta.Phases())
	}
	m := machine.IBMSP()
	if m.Time(ta) <= 0 {
		t.Fatal("model time should be positive")
	}
}

func TestReduceAlgString(t *testing.T) {
	if RecursiveDoubling.String() != "recursive-doubling" || AllToOne.String() != "all-to-one" {
		t.Fatal("alg names")
	}
	if ReduceAlg(9).String() == "" {
		t.Fatal("unknown alg should render")
	}
}

func TestCombineAffectsMessageCountNotResult(t *testing.T) {
	mkOpt := func(combine bool, ta *machine.Tally) Options {
		o := DefaultOptions()
		o.Combine = combine
		o.Tally = ta
		return o
	}
	run := func(combine bool) (float64, int) {
		ta := machine.NewTally(4)
		res, err := Run(4, Sim, mkOpt(combine, ta), func(c *Comm) float64 {
			// Reduction of a 2-vector plus a broadcast; message count
			// differences come from ghost exchanges, tested in
			// gridops_test; here combined and uncombined must agree.
			v := c.AllReduceVec([]float64{float64(c.Rank()), 2}, OpSum)
			return v[0] + v[1]
		})
		if err != nil {
			t.Fatal(err)
		}
		return res[0], ta.TotalMessages()
	}
	a, _ := run(true)
	b, _ := run(false)
	if a != b {
		t.Fatal("combine flag must not change results")
	}
}
