package mesh

import (
	"fmt"

	"repro/internal/obs"
)

// ReduceOp is an associative (or associatively treated) binary
// combining operation for reductions.  The paper notes that treating
// floating-point addition as associative is an *assumption*; the two
// reduction algorithms below combine partial results in different
// orders, which is exactly why the far-field experiment diverged.
type ReduceOp struct {
	Name string
	F    func(a, b float64) float64
}

// Built-in reduction operations.
var (
	// OpSum adds.
	OpSum = ReduceOp{Name: "sum", F: func(a, b float64) float64 { return a + b }}
	// OpMax takes the maximum.
	OpMax = ReduceOp{Name: "max", F: func(a, b float64) float64 {
		if a >= b {
			return a
		}
		return b
	}}
	// OpMin takes the minimum.
	OpMin = ReduceOp{Name: "min", F: func(a, b float64) float64 {
		if a <= b {
			return a
		}
		return b
	}}
)

// ReduceAlg selects how a reduction combines partial results.
type ReduceAlg int

// Reduction algorithms (both appear in the paper's list of
// communication patterns: "all-to-one/one-to-all or recursive
// doubling").
const (
	// RecursiveDoubling runs a butterfly over the nearest power of two
	// of processes: log2(P) rounds, every process finishing with the
	// result.  Combination order is a balanced tree.
	RecursiveDoubling ReduceAlg = iota
	// AllToOne sends every partial to rank 0, which combines them in
	// rank order (matching the sequential order of block partials) and
	// broadcasts the result.
	AllToOne
)

func (a ReduceAlg) String() string {
	switch a {
	case RecursiveDoubling:
		return "recursive-doubling"
	case AllToOne:
		return "all-to-one"
	}
	return fmt.Sprintf("ReduceAlg(%d)", int(a))
}

// Barrier synchronises all processes (dissemination barrier: ceil(log2
// P) rounds of neighbour signalling).
func (c *Comm) Barrier() {
	p, r := c.P(), c.Rank()
	c.beginPhase(obs.PhaseCollective, "barrier")
	for k := 1; k < p; k <<= 1 {
		c.send((r+k)%p, nil)
		c.flush()
		putBuf(c.recv((r - k + p) % p))
	}
	c.endPhase("barrier")
}

// Broadcast distributes root's value of v to every process; each
// process passes its local v and receives the root's.  This is the
// archetype's "broadcast of global data" used to re-establish copy
// consistency of duplicated global variables.
func (c *Comm) Broadcast(v float64, root int) float64 {
	out := c.BroadcastVec([]float64{v}, root)
	return out[0]
}

// BroadcastVec distributes root's vals slice to every process via a
// binomial tree (receive from parent, then forward to children).  The
// returned slice is freshly allocated on non-root processes.
func (c *Comm) BroadcastVec(vals []float64, root int) []float64 {
	p, r := c.P(), c.Rank()
	if root < 0 || root >= p {
		panic(fmt.Sprintf("mesh: broadcast root %d out of range [0,%d)", root, p))
	}
	c.beginPhase(obs.PhaseCollective, "broadcast")
	vrank := (r - root + p) % p
	// lsb: for the root, the next power of two >= p; otherwise the
	// lowest set bit of vrank.  Children of vrank are vrank+m for each
	// power of two m below lsb.
	var lsb int
	if vrank == 0 {
		lsb = 1
		for lsb < p {
			lsb <<= 1
		}
	} else {
		lsb = vrank & (-vrank)
		parent := vrank - lsb
		vals = c.recv((parent + root) % p)
	}
	for m := lsb >> 1; m >= 1; m >>= 1 {
		child := vrank + m
		if child < p {
			c.send((child+root)%p, vals)
		}
	}
	c.flush()
	c.endPhase("broadcast")
	return vals
}

// AllReduce combines every process's v under op and returns the result
// on every process, using the run's configured algorithm.
func (c *Comm) AllReduce(v float64, op ReduceOp) float64 {
	return c.AllReduceAlg(v, op, c.opt.ReduceAlg)
}

// AllReduceAlg is AllReduce with an explicit algorithm choice.
func (c *Comm) AllReduceAlg(v float64, op ReduceOp, alg ReduceAlg) float64 {
	out := c.AllReduceVecAlg([]float64{v}, op, alg)
	return out[0]
}

// AllReduceVec element-wise combines every process's vals under op and
// returns the combined vector on every process, using the run's
// configured algorithm.  All processes must pass vectors of the same
// length.  The input slice is not modified.
func (c *Comm) AllReduceVec(vals []float64, op ReduceOp) []float64 {
	return c.AllReduceVecAlg(vals, op, c.opt.ReduceAlg)
}

// AllReduceVecAlg is AllReduceVec with an explicit algorithm choice.
func (c *Comm) AllReduceVecAlg(vals []float64, op ReduceOp, alg ReduceAlg) []float64 {
	c.beginPhase(obs.PhaseCollective, "reduce")
	acc := make([]float64, len(vals))
	copy(acc, vals)
	switch alg {
	case RecursiveDoubling:
		c.reduceRecursiveDoubling(acc, op)
	case AllToOne:
		c.reduceAllToOne(acc, op)
	default:
		panic(fmt.Sprintf("mesh: unknown reduction algorithm %v", alg))
	}
	c.endPhase("reduce(" + op.Name + ")")
	return acc
}

// combineInto sets acc = op(lowerRankValue, higherRankValue) elementwise.
// Keeping the lower rank's contribution on the left makes the
// combination order a pure function of ranks, so both partners of a
// butterfly exchange compute bitwise identical results.
func combineInto(acc, other []float64, op ReduceOp, accIsLower bool) {
	if len(acc) != len(other) {
		panic(fmt.Sprintf("mesh: reduction length mismatch: %d vs %d", len(acc), len(other)))
	}
	for i := range acc {
		if accIsLower {
			acc[i] = op.F(acc[i], other[i])
		} else {
			acc[i] = op.F(other[i], acc[i])
		}
	}
}

// reduceRecursiveDoubling: fold the ranks above the largest power of
// two into the lower block, butterfly within the power-of-two block,
// then send results back out to the folded ranks.
func (c *Comm) reduceRecursiveDoubling(acc []float64, op ReduceOp) {
	p, r := c.P(), c.Rank()
	pow2 := 1
	for pow2*2 <= p {
		pow2 *= 2
	}
	rem := p - pow2
	// Fold: ranks pow2..p-1 send to r-pow2 and wait for the result.
	if r >= pow2 {
		c.send(r-pow2, acc)
		res := c.recv(r - pow2)
		copy(acc, res)
		putBuf(res)
		return
	}
	if r < rem {
		upper := c.recv(r + pow2)
		combineInto(acc, upper, op, true) // r < r+pow2
		putBuf(upper)
	}
	// Butterfly among ranks [0, pow2).
	for mask := 1; mask < pow2; mask <<= 1 {
		partner := r ^ mask
		c.send(partner, acc)
		// The partner's message does not depend on ours, so our receive
		// may complete without ever blocking (and thus without the
		// automatic pre-block flush): push our half of the exchange now.
		c.flush()
		other := c.recv(partner)
		combineInto(acc, other, op, r < partner)
		putBuf(other)
	}
	// Unfold.
	if r < rem {
		c.send(r+pow2, acc)
		c.flush()
	}
}

// reduceAllToOne: rank 0 receives every partial in rank order, combines
// them left to right (the same order as summing the block partials
// sequentially), and broadcasts the result with direct sends.
func (c *Comm) reduceAllToOne(acc []float64, op ReduceOp) {
	p, r := c.P(), c.Rank()
	if r == 0 {
		for src := 1; src < p; src++ {
			part := c.recv(src)
			combineInto(acc, part, op, true)
			putBuf(part)
		}
		for dst := 1; dst < p; dst++ {
			c.send(dst, acc)
		}
		c.flush()
		return
	}
	c.send(0, acc)
	res := c.recv(0)
	copy(acc, res)
	putBuf(res)
}
