package mesh

import "fmt"

// Additional collectives beyond the paper's core catalogue: inclusive
// prefix reduction (scan), all-gather, and gather-to-root of scalars.
// Scans appear in mesh computations for, e.g., global indexing of
// distributed irregular data; all-gather re-establishes copy
// consistency of per-process contributions in one step.

// Scan returns, on each process r, the fold of the values held by
// processes 0..r in rank order (an inclusive prefix reduction).  The
// implementation is the Hillis-Steele doubling scan: ceil(log2 P)
// rounds, each with one send and at most one receive per process.
func (c *Comm) Scan(v float64, op ReduceOp) float64 {
	p, r := c.P(), c.Rank()
	acc := v
	for k := 1; k < p; k <<= 1 {
		// Send first (infinite slack), then receive: the SSP-safe order.
		if r+k < p {
			c.send(r+k, []float64{acc})
		}
		if r-k >= 0 {
			got := c.recv(r - k)
			// The received value folds ranks r-2k+1..r-k; it combines on
			// the left of acc to preserve rank order.
			acc = op.F(got[0], acc)
		}
	}
	c.endPhase("scan(" + op.Name + ")")
	return acc
}

// AllGather returns, on every process, the slice of all processes'
// values indexed by rank.
func (c *Comm) AllGather(v float64) []float64 {
	out := c.AllGatherVec([]float64{v})
	flat := make([]float64, len(out))
	for i, vec := range out {
		flat[i] = vec[0]
	}
	return flat
}

// AllGatherVec returns, on every process, every process's vector,
// indexed by rank.  All processes must pass equal-length vectors.
func (c *Comm) AllGatherVec(vals []float64) [][]float64 {
	p, r := c.P(), c.Rank()
	out := make([][]float64, p)
	own := make([]float64, len(vals))
	copy(own, vals)
	out[r] = own
	for dst := 0; dst < p; dst++ {
		if dst != r {
			c.send(dst, vals)
		}
	}
	for src := 0; src < p; src++ {
		if src != r {
			got := c.recv(src)
			if len(got) != len(vals) {
				panic(fmt.Sprintf("mesh: AllGatherVec length mismatch: %d vs %d", len(got), len(vals)))
			}
			out[src] = got
		}
	}
	c.endPhase("allgather")
	return out
}

// GatherValues returns, on root, the per-process scalars indexed by
// rank, and nil on every other process.
func (c *Comm) GatherValues(v float64, root int) []float64 {
	p, r := c.P(), c.Rank()
	if root < 0 || root >= p {
		panic(fmt.Sprintf("mesh: gather root %d out of range [0,%d)", root, p))
	}
	defer c.endPhase("gather-values")
	if r != root {
		c.send(root, []float64{v})
		return nil
	}
	out := make([]float64, p)
	out[r] = v
	for src := 0; src < p; src++ {
		if src != root {
			out[src] = c.recv(src)[0]
		}
	}
	return out
}
