package mesh

import (
	"math/bits"
	"sync"
)

// Message-buffer arena.  Every archetype message payload is a flat
// []float64; on the steady-state path of a grid application the same
// few sizes recur every time step (one ghost plane, one combined
// multi-grid message per neighbour).  Allocating each payload fresh
// makes the messaging layer the dominant source of garbage, so pack
// buffers are recycled through power-of-two size-classed sync.Pools:
// a sender obtains a buffer with getBuf, packs into it, and transfers
// ownership to the channel with Comm.sendOwned; the receiver, once it
// has fully copied the payload into its grids, returns the buffer with
// putBuf.  In steady state no heap object is allocated per message —
// enforced by TestSteadyStateExchangeAllocs.
//
// Ownership discipline: a buffer handed to sendOwned must never be
// touched by the sender again, and putBuf may only be called on a
// received payload after the last read of its contents.  Payloads that
// escape to the caller (BroadcastVec's returned slice, reduction
// results) are simply never returned to the pool — correctness never
// depends on a buffer being recycled.

const (
	// minClassBits is the smallest pooled size class (2^6 = 64 floats);
	// tinier messages are cheap enough to allocate and barely recur.
	minClassBits = 6
	// maxClassBits caps pooling at 2^22 floats (32 MiB); one-off giant
	// gather payloads should go back to the collector, not pin memory.
	maxClassBits = 22
)

// pooledBuf is the boxed header stored in the class pools.  Pooling
// *pooledBuf instead of []float64 avoids the slice-header allocation
// that boxing a slice into an interface{} would cost on every Put; the
// headers themselves recycle through headerPool, so the steady state
// allocates neither buffers nor headers.
type pooledBuf struct{ buf []float64 }

var (
	classPools [maxClassBits + 1]sync.Pool
	headerPool = sync.Pool{New: func() any { return new(pooledBuf) }}
)

// sizeClass returns the pool index whose buffers have capacity 2^class
// >= n, or -1 when n is outside the pooled range.
func sizeClass(n int) int {
	c := bits.Len(uint(n - 1)) // ceil(log2 n)
	if c < minClassBits {
		c = minClassBits
	}
	if c > maxClassBits {
		return -1
	}
	return c
}

// getBuf returns a length-n buffer for packing a message, recycled from
// the arena when possible.  The contents are unspecified; callers must
// overwrite every element.  getBuf(0) returns nil.
func getBuf(n int) []float64 {
	if n == 0 {
		return nil
	}
	c := sizeClass(n)
	if c < 0 {
		return make([]float64, n)
	}
	if v := classPools[c].Get(); v != nil {
		pb := v.(*pooledBuf)
		buf := pb.buf
		pb.buf = nil
		headerPool.Put(pb)
		return buf[:n]
	}
	return make([]float64, 1<<c)[:n]
}

// putBuf returns a message buffer to the arena.  It accepts any slice
// and silently drops those the arena did not produce (nil, or capacity
// not an in-range power of two), so receivers can release every
// consumed payload without tracking provenance.
func putBuf(b []float64) {
	c := cap(b)
	if c < 1<<minClassBits || c > 1<<maxClassBits || c&(c-1) != 0 {
		return
	}
	pb := headerPool.Get().(*pooledBuf)
	pb.buf = b[:0]
	classPools[bits.Len(uint(c))-1].Put(pb)
}
