package mesh

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/obs"
)

// obsWorkload exercises every phase kind: ghost exchange, collectives,
// and scatter/gather I/O.
func obsWorkload(nx, steps int) func(c *Comm) float64 {
	return func(c *Comm) float64 {
		p, r := c.P(), c.Rank()
		ranges := grid.Decompose(nx, p)
		var global *grid.G2
		if r == 0 {
			global = grid.New2(nx, 3, 0)
			for i := 0; i < nx; i++ {
				for j := 0; j < 3; j++ {
					global.Set(i, j, float64(i*3+j))
				}
			}
		}
		local := c.ScatterRows(global, ranges, 1, 0)
		acc := 0.0
		for n := 0; n < steps; n++ {
			c.ExchangeGhostRows(local)
			c.Work(float64(local.NX() * local.NY()))
			acc += c.AllReduce(float64(r+n), OpSum)
		}
		c.Barrier()
		out := c.BroadcastVec([]float64{acc}, 0)
		c.GatherRows(local, ranges, nx, 0)
		return out[0]
	}
}

// TestObsPhaseAccounting runs the workload under both runtimes and
// checks the collector's core invariants: every phase kind is marked,
// each rank's phase times sum exactly to the wall time, and the obs
// counters agree with the machine tally's independent message count.
func TestObsPhaseAccounting(t *testing.T) {
	const p, nx, steps = 4, 12, 5
	for _, mode := range []Mode{Sim, Par} {
		t.Run(mode.String(), func(t *testing.T) {
			col := obs.New(p)
			tally := machine.NewTally(p)
			opt := DefaultOptions()
			opt.Obs = col
			opt.Tally = tally
			if _, err := Run(p, mode, opt, obsWorkload(nx, steps)); err != nil {
				t.Fatal(err)
			}
			col.Finish()
			snap := col.Snapshot()

			var sends, bytes int64
			for r := 0; r < p; r++ {
				rs := snap.Ranks[r]
				sends += rs.Sends
				bytes += rs.BytesSent
				if rs.Sends == 0 || rs.Recvs == 0 {
					t.Errorf("rank %d recorded no traffic: %+v", r, rs)
				}
				if busy := rs.Busy(); busy != snap.Wall {
					t.Errorf("rank %d phase times sum to %v, wall is %v", r, busy, snap.Wall)
				}
			}
			if want := int64(tally.TotalMessages()); sends != want {
				t.Errorf("obs counted %d sends, tally counted %d messages", sends, want)
			}
			if want := int64(tally.TotalBytes()); bytes != want {
				t.Errorf("obs counted %d bytes, tally counted %d", bytes, want)
			}

			// Every phase kind must appear in the span log.
			seen := map[obs.Phase]bool{}
			for _, s := range col.Spans() {
				seen[s.Phase] = true
			}
			for _, ph := range []obs.Phase{obs.PhaseExchange, obs.PhaseCollective, obs.PhaseIO} {
				if !seen[ph] {
					t.Errorf("no %v span recorded", ph)
				}
			}
		})
	}
}

// TestObsChannelStats attaches the per-channel counters in Par mode and
// cross-checks them against the collector: every message the program
// sent is visible on exactly one channel, and every channel drained.
func TestObsChannelStats(t *testing.T) {
	const p, nx, steps = 3, 9, 4
	col := obs.New(p)
	stats := channel.NewNetStats(p)
	opt := DefaultOptions()
	opt.Obs = col
	opt.ChanStats = stats
	if _, err := Run(p, Par, opt, obsWorkload(nx, steps)); err != nil {
		t.Fatal(err)
	}
	col.Finish()
	snap := col.Snapshot()
	var sends int64
	for _, rs := range snap.Ranks {
		sends += rs.Sends
	}
	if got := stats.TotalMessages(); got != sends {
		t.Errorf("channel stats counted %d messages, obs counted %d sends", got, sends)
	}
	for from := 0; from < p; from++ {
		for to := 0; to < p; to++ {
			if m, r := stats.Messages(from, to), stats.Received(from, to); m != r {
				t.Errorf("channel %d->%d: %d sent but %d received", from, to, m, r)
			}
		}
	}
	if stats.MaxHighWater() < 1 {
		t.Error("no channel ever held a message")
	}
}

// TestObsSizeMismatchRejected checks the defensive P validation.
func TestObsSizeMismatchRejected(t *testing.T) {
	opt := DefaultOptions()
	opt.Obs = obs.New(2)
	if _, err := Run(3, Sim, opt, func(c *Comm) int { return 0 }); err == nil {
		t.Error("mismatched collector not rejected")
	}
	opt = DefaultOptions()
	opt.ChanStats = channel.NewNetStats(2)
	if _, err := Run(3, Par, opt, func(c *Comm) int { return 0 }); err == nil {
		t.Error("mismatched channel stats not rejected")
	}
}
