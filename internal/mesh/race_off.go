//go:build !race

package mesh

// raceEnabled reports whether the race detector is compiled in.  The
// allocation-count tests skip under -race: the detector's own
// instrumentation heap-allocates and would fail AllocsPerRun assertions
// that hold in normal builds.
const raceEnabled = false
