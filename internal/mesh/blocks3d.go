package mesh

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/obs"
)

// Host/grid redistribution of 3-D grids distributed over a 2-D process
// topology (x and y split, z whole): the file-I/O pattern for the
// 2-D-decomposed builds of the FDTD application.

// packLocal3Into serialises a local section's interior, x-major then
// y-major then z, into dst (length NX*NY*NZ, typically pooled).
func packLocal3Into(g *grid.G3, dst []float64) {
	nz := g.NZ()
	off := 0
	for i := 0; i < g.NX(); i++ {
		for j := 0; j < g.NY(); j++ {
			copy(dst[off:off+nz], g.Pencil(i, j))
			off += nz
		}
	}
}

// unpackInto writes a packed local section into the global grid at the
// block position (xr, yr).
func unpackInto(global *grid.G3, xr, yr grid.Range, data []float64) {
	nz := global.NZ()
	off := 0
	for i := 0; i < xr.Len(); i++ {
		for j := 0; j < yr.Len(); j++ {
			copy(global.Pencil(xr.Lo+i, yr.Lo+j), data[off:off+nz])
			off += nz
		}
	}
}

// copyBlockIn copies a local section's interior pencils directly into
// the global grid (root's own block: no serialisation round trip).
func copyBlockIn(global *grid.G3, xr, yr grid.Range, local *grid.G3) {
	for i := 0; i < local.NX(); i++ {
		for j := 0; j < local.NY(); j++ {
			copy(global.Pencil(xr.Lo+i, yr.Lo+j), local.Pencil(i, j))
		}
	}
}

// copyBlockOut copies the (xr, yr) block of the global grid directly
// into a local section's interior pencils.
func copyBlockOut(local *grid.G3, global *grid.G3, xr, yr grid.Range) {
	for i := 0; i < local.NX(); i++ {
		for j := 0; j < local.NY(); j++ {
			copy(local.Pencil(i, j), global.Pencil(xr.Lo+i, yr.Lo+j))
		}
	}
}

// Gather3DBlocks collects a 3-D grid distributed as (x, y) blocks onto
// root, returning the assembled global grid there and nil elsewhere.
// nz is the (undistributed) z extent.
func (c *Comm) Gather3DBlocks(local *grid.G3, t *Topo2D, nz, root int) *grid.G3 {
	if c.P() != t.P() {
		panic(fmt.Sprintf("mesh: topology has %d processes, run has %d", t.P(), c.P()))
	}
	c.beginPhase(obs.PhaseIO, "gather-3d-blocks")
	defer c.endPhase("gather-3d-blocks")
	r := c.Rank()
	if r != root {
		buf := getBuf(local.NX() * local.NY() * local.NZ())
		packLocal3Into(local, buf)
		c.sendOwned(root, buf)
		return nil
	}
	// The preallocated global grid is the full receive area; the own
	// block is copied pencil-by-pencil, received blocks are unpacked
	// straight into place and their payloads returned to the arena.
	global := grid.New3(t.NX, t.NY, nz, 0)
	xr, yr := t.Block(r)
	copyBlockIn(global, xr, yr, local)
	for src := 0; src < c.P(); src++ {
		if src == root {
			continue
		}
		sxr, syr := t.Block(src)
		buf := c.recv(src)
		unpackInto(global, sxr, syr, buf)
		putBuf(buf)
	}
	return global
}

// Scatter3DBlocks distributes a global 3-D grid held by root into
// (x, y) block local sections with the given per-axis ghost widths.
// Every process returns its local section; global is read only on root.
func (c *Comm) Scatter3DBlocks(global *grid.G3, t *Topo2D, nz, root, gx, gy int) *grid.G3 {
	if c.P() != t.P() {
		panic(fmt.Sprintf("mesh: topology has %d processes, run has %d", t.P(), c.P()))
	}
	c.beginPhase(obs.PhaseIO, "scatter-3d-blocks")
	defer c.endPhase("scatter-3d-blocks")
	r := c.Rank()
	mkLocal := func(rank int) *grid.G3 {
		xr, yr := t.Block(rank)
		return grid.New3G(xr.Len(), yr.Len(), nz, gx, gy, 0)
	}
	fill := func(local *grid.G3, data []float64) {
		off := 0
		for i := 0; i < local.NX(); i++ {
			for j := 0; j < local.NY(); j++ {
				copy(local.Pencil(i, j), data[off:off+nz])
				off += nz
			}
		}
	}
	if r == root {
		if global == nil {
			panic("mesh: Scatter3DBlocks requires the global grid on root")
		}
		for dst := 0; dst < c.P(); dst++ {
			if dst == root {
				continue
			}
			xr, yr := t.Block(dst)
			buf := getBuf(xr.Len() * yr.Len() * nz)
			off := 0
			for i := xr.Lo; i < xr.Hi; i++ {
				for j := yr.Lo; j < yr.Hi; j++ {
					copy(buf[off:off+nz], global.Pencil(i, j))
					off += nz
				}
			}
			c.sendOwned(dst, buf)
		}
		local := mkLocal(r)
		xr, yr := t.Block(r)
		copyBlockOut(local, global, xr, yr)
		return local
	}
	local := mkLocal(r)
	buf := c.recv(root)
	fill(local, buf)
	putBuf(buf)
	return local
}
