package mesh

import (
	"fmt"

	"repro/internal/grid"
)

// Host/grid redistribution of 3-D grids distributed over a 2-D process
// topology (x and y split, z whole): the file-I/O pattern for the
// 2-D-decomposed builds of the FDTD application.

// packLocal3 serialises a local section's interior, x-major then
// y-major then z.
func packLocal3(g *grid.G3) []float64 {
	out := make([]float64, 0, g.NX()*g.NY()*g.NZ())
	for i := 0; i < g.NX(); i++ {
		for j := 0; j < g.NY(); j++ {
			out = append(out, g.Pencil(i, j)...)
		}
	}
	return out
}

// unpackInto writes a packed local section into the global grid at the
// block position (xr, yr).
func unpackInto(global *grid.G3, xr, yr grid.Range, data []float64) {
	nz := global.NZ()
	off := 0
	for i := 0; i < xr.Len(); i++ {
		for j := 0; j < yr.Len(); j++ {
			copy(global.Pencil(xr.Lo+i, yr.Lo+j), data[off:off+nz])
			off += nz
		}
	}
}

// Gather3DBlocks collects a 3-D grid distributed as (x, y) blocks onto
// root, returning the assembled global grid there and nil elsewhere.
// nz is the (undistributed) z extent.
func (c *Comm) Gather3DBlocks(local *grid.G3, t *Topo2D, nz, root int) *grid.G3 {
	if c.P() != t.P() {
		panic(fmt.Sprintf("mesh: topology has %d processes, run has %d", t.P(), c.P()))
	}
	defer c.endPhase("gather-3d-blocks")
	r := c.Rank()
	if r != root {
		c.send(root, packLocal3(local))
		return nil
	}
	global := grid.New3(t.NX, t.NY, nz, 0)
	xr, yr := t.Block(r)
	unpackInto(global, xr, yr, packLocal3(local))
	for src := 0; src < c.P(); src++ {
		if src == root {
			continue
		}
		sxr, syr := t.Block(src)
		unpackInto(global, sxr, syr, c.recv(src))
	}
	return global
}

// Scatter3DBlocks distributes a global 3-D grid held by root into
// (x, y) block local sections with the given per-axis ghost widths.
// Every process returns its local section; global is read only on root.
func (c *Comm) Scatter3DBlocks(global *grid.G3, t *Topo2D, nz, root, gx, gy int) *grid.G3 {
	if c.P() != t.P() {
		panic(fmt.Sprintf("mesh: topology has %d processes, run has %d", t.P(), c.P()))
	}
	defer c.endPhase("scatter-3d-blocks")
	r := c.Rank()
	mkLocal := func(rank int) *grid.G3 {
		xr, yr := t.Block(rank)
		return grid.New3G(xr.Len(), yr.Len(), nz, gx, gy, 0)
	}
	pack := func(rank int) []float64 {
		xr, yr := t.Block(rank)
		out := make([]float64, 0, xr.Len()*yr.Len()*nz)
		for i := xr.Lo; i < xr.Hi; i++ {
			for j := yr.Lo; j < yr.Hi; j++ {
				out = append(out, global.Pencil(i, j)...)
			}
		}
		return out
	}
	fill := func(local *grid.G3, data []float64) {
		off := 0
		for i := 0; i < local.NX(); i++ {
			for j := 0; j < local.NY(); j++ {
				copy(local.Pencil(i, j), data[off:off+nz])
				off += nz
			}
		}
	}
	if r == root {
		if global == nil {
			panic("mesh: Scatter3DBlocks requires the global grid on root")
		}
		for dst := 0; dst < c.P(); dst++ {
			if dst != root {
				c.send(dst, pack(dst))
			}
		}
		local := mkLocal(r)
		fill(local, pack(r))
		return local
	}
	local := mkLocal(r)
	fill(local, c.recv(root))
	return local
}
