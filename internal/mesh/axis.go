package mesh

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/obs"
)

// Axis-generic boundary exchange.  The mesh archetype distributes an
// N-dimensional grid as contiguous slabs along one axis; the exchange
// logic is identical for every axis, differing only in which planes are
// packed.  ExchangeGhostPlanesX and the directional SendUpX/SendDownX
// operations are the AxisX specialisations used by the FDTD code.
//
// Phase labels are precomputed per axis: label strings sit on the
// per-step hot path and building them with concatenation would allocate
// on every exchange.
var (
	ghostExchangeLabels   = [3]string{"ghost-exchange-x", "ghost-exchange-y", "ghost-exchange-z"}
	multiExchangeLabels   = [3]string{"ghost-exchange-multi-x", "ghost-exchange-multi-y", "ghost-exchange-multi-z"}
	directionalLabels     = [3]string{"directional-exchange-x", "directional-exchange-y", "directional-exchange-z"}
	directionalSendLabels = [3]string{"directional-send-x", "directional-send-y", "directional-send-z"}
	directionalRecvLabels = [3]string{"directional-recv-x", "directional-recv-y", "directional-recv-z"}
)

func axisLabel(tab *[3]string, axis grid.Axis) string {
	if axis < 0 || int(axis) >= len(tab) {
		panic(fmt.Sprintf("mesh: bad axis %v", axis))
	}
	return tab[axis]
}

// ExchangeGhostPlanes refreshes the ghost planes of a 3-D local
// section split along the given axis, exchanging the full ghost width
// with both neighbours (sends before receives).
func (c *Comm) ExchangeGhostPlanes(g *grid.G3, axis grid.Axis) {
	p, r := c.P(), c.Rank()
	w := g.AxisGhost(axis)
	if w == 0 {
		panic(fmt.Sprintf("mesh: ExchangeGhostPlanes requires a ghost boundary along %v", axis))
	}
	n := g.AxisN(axis)
	if 2*w > n {
		panic(fmt.Sprintf("mesh: ghost width %d too large for %d local planes along %v", w, n, axis))
	}
	c.beginPhase(obs.PhaseExchange, "ghost-exchange")
	size := g.PlaneSize(axis)
	if r > 0 {
		c.sendPlanes(r-1, w, size, func(k int, dst []float64) { g.PackPlane(axis, k, dst) })
	}
	if r < p-1 {
		c.sendPlanes(r+1, w, size, func(k int, dst []float64) { g.PackPlane(axis, n-w+k, dst) })
	}
	c.flush()
	if r > 0 {
		c.recvPlanes(r-1, w, func(k int, data []float64) { g.UnpackPlane(axis, -w+k, data) })
	}
	if r < p-1 {
		c.recvPlanes(r+1, w, func(k int, data []float64) { g.UnpackPlane(axis, n+k, data) })
	}
	c.endPhase(axisLabel(&ghostExchangeLabels, axis))
}

// ExchangeGhostPlanesMulti refreshes the ghost planes of several grids
// split along the same axis in one coalesced exchange: all planes bound
// for one neighbour — every ghost layer of every grid — travel in a
// single message per direction (when Options.Combine is set), instead
// of one message per grid.  For the FDTD's two-fields-per-direction
// exchanges this alone cuts the per-step message count in half; for a
// six-field full exchange it is a 6x reduction.  All grids must share
// the split-axis extent, ghost width, and plane size.
func (c *Comm) ExchangeGhostPlanesMulti(axis grid.Axis, gs ...*grid.G3) {
	if len(gs) == 0 {
		return
	}
	p, r := c.P(), c.Rank()
	g0 := gs[0]
	w, n, size := g0.AxisGhost(axis), g0.AxisN(axis), g0.PlaneSize(axis)
	if w == 0 {
		panic(fmt.Sprintf("mesh: ExchangeGhostPlanesMulti requires a ghost boundary along %v", axis))
	}
	if 2*w > n {
		panic(fmt.Sprintf("mesh: ghost width %d too large for %d local planes along %v", w, n, axis))
	}
	for _, g := range gs[1:] {
		if g.AxisGhost(axis) != w || g.AxisN(axis) != n || g.PlaneSize(axis) != size {
			panic(fmt.Sprintf("mesh: ExchangeGhostPlanesMulti requires identical sections: %v vs %v", g, g0))
		}
	}
	c.beginPhase(obs.PhaseExchange, "ghost-exchange-multi")
	planes := len(gs) * w
	if r > 0 {
		c.sendPlanes(r-1, planes, size, func(k int, dst []float64) {
			gs[k/w].PackPlane(axis, k%w, dst)
		})
	}
	if r < p-1 {
		c.sendPlanes(r+1, planes, size, func(k int, dst []float64) {
			gs[k/w].PackPlane(axis, n-w+k%w, dst)
		})
	}
	c.flush()
	if r > 0 {
		c.recvPlanes(r-1, planes, func(k int, data []float64) {
			gs[k/w].UnpackPlane(axis, -w+k%w, data)
		})
	}
	if r < p-1 {
		c.recvPlanes(r+1, planes, func(k int, data []float64) {
			gs[k/w].UnpackPlane(axis, n+k%w, data)
		})
	}
	c.endPhase(axisLabel(&multiExchangeLabels, axis))
}

// SendUp ships each grid's top interior plane along the axis to the
// upper neighbour and fills each grid's low ghost plane from the lower
// neighbour, with neighbours taken from the 1-D chain of ranks.  All
// grids must share the two non-split extents.
func (c *Comm) SendUp(axis grid.Axis, gs ...*grid.G3) {
	p, r := c.P(), c.Rank()
	up, down := -1, -1
	if r > 0 {
		down = r - 1
	}
	if r < p-1 {
		up = r + 1
	}
	c.SendUpTo(axis, up, down, gs...)
}

// SendDown ships each grid's bottom interior plane to the lower
// neighbour and fills each grid's high ghost plane from the upper
// neighbour, with neighbours from the 1-D chain of ranks.
func (c *Comm) SendDown(axis grid.Axis, gs ...*grid.G3) {
	p, r := c.P(), c.Rank()
	up, down := -1, -1
	if r > 0 {
		down = r - 1
	}
	if r < p-1 {
		up = r + 1
	}
	c.SendDownTo(axis, down, up, gs...)
}

// SendUpTo is the topology-explicit form of SendUp: the caller names
// the rank above (sendTo) and below (recvFrom), each -1 when absent —
// as for processes on a 2-D process grid, where the neighbour along an
// axis is not rank±1.
func (c *Comm) SendUpTo(axis grid.Axis, sendTo, recvFrom int, gs ...*grid.G3) {
	c.directional(axis, true, sendTo, recvFrom, gs)
}

// SendDownTo is the topology-explicit form of SendDown.
func (c *Comm) SendDownTo(axis grid.Axis, sendTo, recvFrom int, gs ...*grid.G3) {
	c.directional(axis, false, sendTo, recvFrom, gs)
}

// StartSendUpTo performs only the send half of SendUpTo; the matching
// FinishSendUpTo performs the receive half.  Between the two the caller
// may update any cells that do not read the low ghost plane, so the
// interior computation overlaps the message flight (Options.Overlap).
// Results are bitwise identical to the unsplit call: deferring a
// receive past computation that does not read the received cells
// changes nothing, by the same determinacy argument as Theorem 1.
// Each half is its own bulk-synchronous phase, so all ranks must call
// Start and Finish in the same order.
func (c *Comm) StartSendUpTo(axis grid.Axis, sendTo int, gs ...*grid.G3) {
	c.beginPhase(obs.PhaseExchange, axisLabel(&directionalSendLabels, axis))
	if len(gs) > 0 {
		directionalValidate(axis, gs)
		c.directionalSend(axis, true, sendTo, gs)
		// End of the send half: push the coalesced frames now so the
		// message flight overlaps the interior computation.
		c.flush()
	}
	c.endPhase(axisLabel(&directionalSendLabels, axis))
}

// FinishSendUpTo completes a StartSendUpTo by receiving the upward
// messages from the rank below into each grid's low ghost plane.
func (c *Comm) FinishSendUpTo(axis grid.Axis, recvFrom int, gs ...*grid.G3) {
	c.beginPhase(obs.PhaseExchange, axisLabel(&directionalRecvLabels, axis))
	if len(gs) > 0 {
		c.directionalRecv(axis, true, recvFrom, gs)
	}
	c.endPhase(axisLabel(&directionalRecvLabels, axis))
}

// StartSendDownTo performs only the send half of SendDownTo.
func (c *Comm) StartSendDownTo(axis grid.Axis, sendTo int, gs ...*grid.G3) {
	c.beginPhase(obs.PhaseExchange, axisLabel(&directionalSendLabels, axis))
	if len(gs) > 0 {
		directionalValidate(axis, gs)
		c.directionalSend(axis, false, sendTo, gs)
		c.flush()
	}
	c.endPhase(axisLabel(&directionalSendLabels, axis))
}

// FinishSendDownTo completes a StartSendDownTo by receiving the
// downward messages from the rank above into each grid's high ghost
// plane.
func (c *Comm) FinishSendDownTo(axis grid.Axis, recvFrom int, gs ...*grid.G3) {
	c.beginPhase(obs.PhaseExchange, axisLabel(&directionalRecvLabels, axis))
	if len(gs) > 0 {
		c.directionalRecv(axis, false, recvFrom, gs)
	}
	c.endPhase(axisLabel(&directionalRecvLabels, axis))
}

func (c *Comm) directional(axis grid.Axis, up bool, sendTo, recvFrom int, gs []*grid.G3) {
	c.beginPhase(obs.PhaseExchange, axisLabel(&directionalLabels, axis))
	if len(gs) > 0 {
		directionalValidate(axis, gs)
		c.directionalSend(axis, up, sendTo, gs)
		c.flush()
		c.directionalRecv(axis, up, recvFrom, gs)
	}
	c.endPhase(axisLabel(&directionalLabels, axis))
}

func directionalValidate(axis grid.Axis, gs []*grid.G3) {
	for _, g := range gs {
		if g.AxisGhost(axis) < 1 {
			panic(fmt.Sprintf("mesh: directional exchange requires ghost width >= 1 along %v", axis))
		}
	}
	for _, g := range gs[1:] {
		if g.PlaneSize(axis) != gs[0].PlaneSize(axis) {
			panic(fmt.Sprintf("mesh: directional exchange requires equal plane sizes: %v vs %v", g, gs[0]))
		}
	}
}

// directionalSend packs one boundary plane per grid — the top interior
// plane when up, the bottom when down — and ships all of them to sendTo
// as a single pooled message (or one per grid when message combining is
// off).  The loops pack straight into the outgoing buffer: no closures,
// no intermediate copies.
func (c *Comm) directionalSend(axis grid.Axis, up bool, sendTo int, gs []*grid.G3) {
	if sendTo < 0 {
		return
	}
	size := gs[0].PlaneSize(axis)
	if c.opt.Combine {
		buf := getBuf(len(gs) * size)
		for k, g := range gs {
			idx := 0
			if up {
				idx = g.AxisN(axis) - 1
			}
			g.PackPlane(axis, idx, buf[k*size:(k+1)*size])
		}
		c.sendOwned(sendTo, buf)
		return
	}
	for _, g := range gs {
		buf := getBuf(size)
		idx := 0
		if up {
			idx = g.AxisN(axis) - 1
		}
		g.PackPlane(axis, idx, buf)
		c.sendOwned(sendTo, buf)
	}
}

// directionalRecv receives the boundary planes from recvFrom and
// unpacks each into its grid's ghost plane — the low ghost when up, the
// high ghost when down — returning the consumed payload to the arena.
func (c *Comm) directionalRecv(axis grid.Axis, up bool, recvFrom int, gs []*grid.G3) {
	if recvFrom < 0 {
		return
	}
	size := gs[0].PlaneSize(axis)
	if c.opt.Combine {
		buf := c.recv(recvFrom)
		if len(buf) != len(gs)*size {
			panic(fmt.Sprintf("mesh: directional message length %d, want %d", len(buf), len(gs)*size))
		}
		for k, g := range gs {
			idx := g.AxisN(axis)
			if up {
				idx = -1
			}
			g.UnpackPlane(axis, idx, buf[k*size:(k+1)*size])
		}
		putBuf(buf)
		return
	}
	for _, g := range gs {
		buf := c.recv(recvFrom)
		idx := g.AxisN(axis)
		if up {
			idx = -1
		}
		g.UnpackPlane(axis, idx, buf)
		putBuf(buf)
	}
}
