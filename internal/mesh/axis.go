package mesh

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/obs"
)

// Axis-generic boundary exchange.  The mesh archetype distributes an
// N-dimensional grid as contiguous slabs along one axis; the exchange
// logic is identical for every axis, differing only in which planes are
// packed.  ExchangeGhostPlanesX and the directional SendUpX/SendDownX
// operations are the AxisX specialisations used by the FDTD code.

// ExchangeGhostPlanes refreshes the ghost planes of a 3-D local
// section split along the given axis, exchanging the full ghost width
// with both neighbours (sends before receives).
func (c *Comm) ExchangeGhostPlanes(g *grid.G3, axis grid.Axis) {
	p, r := c.P(), c.Rank()
	w := g.AxisGhost(axis)
	if w == 0 {
		panic(fmt.Sprintf("mesh: ExchangeGhostPlanes requires a ghost boundary along %v", axis))
	}
	n := g.AxisN(axis)
	if 2*w > n {
		panic(fmt.Sprintf("mesh: ghost width %d too large for %d local planes along %v", w, n, axis))
	}
	c.beginPhase(obs.PhaseExchange, "ghost-exchange")
	if r > 0 {
		c.sendPlanes(r-1, w, func(k int) []float64 { return g.PackPlane(axis, k, nil) })
	}
	if r < p-1 {
		c.sendPlanes(r+1, w, func(k int) []float64 { return g.PackPlane(axis, n-w+k, nil) })
	}
	if r > 0 {
		c.recvPlanes(r-1, w, func(k int, data []float64) { g.UnpackPlane(axis, -w+k, data) })
	}
	if r < p-1 {
		c.recvPlanes(r+1, w, func(k int, data []float64) { g.UnpackPlane(axis, n+k, data) })
	}
	c.endPhase("ghost-exchange-" + axis.String())
}

// SendUp ships each grid's top interior plane along the axis to the
// upper neighbour and fills each grid's low ghost plane from the lower
// neighbour, with neighbours taken from the 1-D chain of ranks.  All
// grids must share the two non-split extents.
func (c *Comm) SendUp(axis grid.Axis, gs ...*grid.G3) {
	p, r := c.P(), c.Rank()
	up, down := -1, -1
	if r > 0 {
		down = r - 1
	}
	if r < p-1 {
		up = r + 1
	}
	c.SendUpTo(axis, up, down, gs...)
}

// SendDown ships each grid's bottom interior plane to the lower
// neighbour and fills each grid's high ghost plane from the upper
// neighbour, with neighbours from the 1-D chain of ranks.
func (c *Comm) SendDown(axis grid.Axis, gs ...*grid.G3) {
	p, r := c.P(), c.Rank()
	up, down := -1, -1
	if r > 0 {
		down = r - 1
	}
	if r < p-1 {
		up = r + 1
	}
	c.SendDownTo(axis, down, up, gs...)
}

// SendUpTo is the topology-explicit form of SendUp: the caller names
// the rank above (sendTo) and below (recvFrom), each -1 when absent —
// as for processes on a 2-D process grid, where the neighbour along an
// axis is not rank±1.
func (c *Comm) SendUpTo(axis grid.Axis, sendTo, recvFrom int, gs ...*grid.G3) {
	c.directional(axis, true, sendTo, recvFrom, gs)
}

// SendDownTo is the topology-explicit form of SendDown.
func (c *Comm) SendDownTo(axis grid.Axis, sendTo, recvFrom int, gs ...*grid.G3) {
	c.directional(axis, false, sendTo, recvFrom, gs)
}

func (c *Comm) directional(axis grid.Axis, up bool, sendTo, recvFrom int, gs []*grid.G3) {
	c.beginPhase(obs.PhaseExchange, "directional-exchange")
	if len(gs) == 0 {
		c.endPhase("directional-exchange")
		return
	}
	for _, g := range gs {
		if g.AxisGhost(axis) < 1 {
			panic(fmt.Sprintf("mesh: directional exchange requires ghost width >= 1 along %v", axis))
		}
	}
	for _, g := range gs[1:] {
		if g.PlaneSize(axis) != gs[0].PlaneSize(axis) {
			panic(fmt.Sprintf("mesh: directional exchange requires equal plane sizes: %v vs %v", g, gs[0]))
		}
	}
	if sendTo >= 0 {
		c.sendPlanes(sendTo, len(gs), func(k int) []float64 {
			g := gs[k]
			if up {
				return g.PackPlane(axis, g.AxisN(axis)-1, nil)
			}
			return g.PackPlane(axis, 0, nil)
		})
	}
	if recvFrom >= 0 {
		c.recvPlanes(recvFrom, len(gs), func(k int, data []float64) {
			g := gs[k]
			if up {
				g.UnpackPlane(axis, -1, data)
			} else {
				g.UnpackPlane(axis, g.AxisN(axis), data)
			}
		})
	}
	c.endPhase("directional-exchange-" + axis.String())
}
