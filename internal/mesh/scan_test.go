package mesh

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestScanExactData(t *testing.T) {
	for _, mode := range bothModes {
		for _, p := range []int{1, 2, 3, 5, 8, 9} {
			res, err := Run(p, mode, DefaultOptions(), func(c *Comm) float64 {
				return c.Scan(float64(c.Rank()+1), OpSum)
			})
			if err != nil {
				t.Fatalf("%v p=%d: %v", mode, p, err)
			}
			for r, v := range res {
				want := float64((r + 1) * (r + 2) / 2) // 1+2+...+(r+1)
				if v != want {
					t.Fatalf("%v p=%d: scan[%d] = %v want %v", mode, p, r, v, want)
				}
			}
		}
	}
}

func TestScanMax(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	res, err := Run(len(vals), Sim, DefaultOptions(), func(c *Comm) float64 {
		return c.Scan(vals[c.Rank()], OpMax)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 3, 4, 4, 5, 9, 9, 9}
	if !reflect.DeepEqual(res, want) {
		t.Fatalf("scan max = %v", res)
	}
}

// Property: a sum scan over random integer data matches the sequential
// prefix sums exactly, for any process count.
func TestScanPrefixProperty(t *testing.T) {
	prop := func(raw []int8) bool {
		if len(raw) == 0 || len(raw) > 12 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
		}
		res, err := Run(len(vals), Sim, DefaultOptions(), func(c *Comm) float64 {
			return c.Scan(vals[c.Rank()], OpSum)
		})
		if err != nil {
			return false
		}
		acc := 0.0
		for r, v := range vals {
			acc += v
			if res[r] != acc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAllGather(t *testing.T) {
	for _, mode := range bothModes {
		res, err := Run(5, mode, DefaultOptions(), func(c *Comm) []float64 {
			return c.AllGather(float64(c.Rank() * 10))
		})
		if err != nil {
			t.Fatal(err)
		}
		want := []float64{0, 10, 20, 30, 40}
		for r, v := range res {
			if !reflect.DeepEqual(v, want) {
				t.Fatalf("%v proc %d: %v", mode, r, v)
			}
		}
	}
}

func TestAllGatherVec(t *testing.T) {
	res, err := Run(3, Sim, DefaultOptions(), func(c *Comm) [][]float64 {
		return c.AllGatherVec([]float64{float64(c.Rank()), -float64(c.Rank())})
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		for src := 0; src < 3; src++ {
			if res[r][src][0] != float64(src) || res[r][src][1] != -float64(src) {
				t.Fatalf("proc %d entry %d = %v", r, src, res[r][src])
			}
		}
	}
	// Returned vectors must not alias the sender's buffer.
	res2, err := Run(2, Sim, DefaultOptions(), func(c *Comm) bool {
		mine := []float64{float64(c.Rank())}
		all := c.AllGatherVec(mine)
		mine[0] = 99
		return all[c.Rank()][0] != 99
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res2[0] || !res2[1] {
		t.Fatal("AllGatherVec aliases caller memory")
	}
}

func TestGatherValues(t *testing.T) {
	res, err := Run(4, Sim, DefaultOptions(), func(c *Comm) []float64 {
		return c.GatherValues(float64(c.Rank()*c.Rank()), 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if r == 2 {
			if !reflect.DeepEqual(res[r], []float64{0, 1, 4, 9}) {
				t.Fatalf("root gather = %v", res[r])
			}
		} else if res[r] != nil {
			t.Fatalf("non-root %d got %v", r, res[r])
		}
	}
	_, err = Run(2, Sim, DefaultOptions(), func(c *Comm) bool {
		defer func() { recover() }()
		c.GatherValues(1, 7)
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScanSimEqualsPar(t *testing.T) {
	prog := func(c *Comm) float64 {
		v := float64(c.Rank())*1.37 + 0.1
		s := c.Scan(v, OpSum)
		g := c.AllGather(s)
		return g[c.P()-1] + s
	}
	sim, err := Run(6, Sim, DefaultOptions(), prog)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(6, Par, DefaultOptions(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sim, par) {
		t.Fatal("scan/allgather Sim != Par")
	}
}
