package mesh

import (
	"testing"

	"repro/internal/grid"
)

func TestScatterGather3DBlocksRoundTrip(t *testing.T) {
	const nx, ny, nz = 9, 8, 5
	global := grid.New3(nx, ny, nz, 0)
	global.FillFunc(func(i, j, k int) float64 { return float64(i*1000 + j*10 + k) })
	for _, pq := range [][2]int{{1, 1}, {2, 2}, {3, 2}, {1, 4}} {
		topo := NewTopo2D(nx, ny, pq[0], pq[1])
		for _, mode := range bothModes {
			res, err := Run(topo.P(), mode, DefaultOptions(), func(c *Comm) *grid.G3 {
				var src *grid.G3
				if c.Rank() == 0 {
					src = global
				}
				local := c.Scatter3DBlocks(src, topo, nz, 0, 1, 1)
				// Spot-check the local contents and ghost allocation.
				xr, yr := topo.Block(c.Rank())
				if local.GhostX() != 1 || local.GhostY() != 1 || local.GhostZ() != 0 {
					panic("scatter ghost widths wrong")
				}
				for i := 0; i < local.NX(); i++ {
					if local.At(i, 0, 0) != global.At(xr.Lo+i, yr.Lo, 0) {
						panic("scatter delivered wrong block")
					}
				}
				return c.Gather3DBlocks(local, topo, nz, 0)
			})
			if err != nil {
				t.Fatalf("%v %v: %v", pq, mode, err)
			}
			if res[0] == nil || !res[0].Equal(global) {
				t.Fatalf("%v %v: gather(scatter(g)) != g", pq, mode)
			}
			for r := 1; r < topo.P(); r++ {
				if res[r] != nil {
					t.Fatalf("non-root %d returned a grid", r)
				}
			}
		}
	}
}

func TestGather3DBlocksToNonZeroRoot(t *testing.T) {
	topo := NewTopo2D(6, 6, 2, 2)
	res, err := Run(4, Sim, DefaultOptions(), func(c *Comm) *grid.G3 {
		xr, yr := topo.Block(c.Rank())
		local := grid.New3G(xr.Len(), yr.Len(), 3, 0, 0, 0)
		local.FillFunc(func(i, j, k int) float64 {
			return float64((xr.Lo+i)*100 + (yr.Lo+j)*10 + k)
		})
		return c.Gather3DBlocks(local, topo, 3, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != nil || res[1] != nil || res[3] != nil || res[2] == nil {
		t.Fatal("only root 2 should hold the gathered grid")
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			for k := 0; k < 3; k++ {
				if res[2].At(i, j, k) != float64(i*100+j*10+k) {
					t.Fatalf("gathered (%d,%d,%d) wrong", i, j, k)
				}
			}
		}
	}
}

func TestBlocks3DPanics(t *testing.T) {
	topo := NewTopo2D(6, 6, 2, 2)
	_, err := Run(2, Sim, DefaultOptions(), func(c *Comm) bool {
		defer func() { recover() }()
		g := grid.New3(3, 3, 3, 0)
		c.Gather3DBlocks(g, topo, 3, 0) // run P != topo P
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(4, Sim, DefaultOptions(), func(c *Comm) bool {
		defer func() { recover() }()
		c.Scatter3DBlocks(nil, topo, 3, c.Rank(), 0, 0) // nil global on root
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommOptionsAccessor(t *testing.T) {
	opt := DefaultOptions()
	opt.Combine = false
	res, err := Run(1, Sim, opt, func(c *Comm) bool {
		return c.Options().Combine
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0] {
		t.Fatal("Options() should reflect the run options")
	}
}
