package mesh

import (
	"reflect"
	"testing"

	"repro/internal/grid"
)

func TestExchangeGhostPlanesAllAxes(t *testing.T) {
	f := func(gi, gj, gk int) float64 { return float64(10000*gi + 100*gj + gk) }
	const n0, n1, n2, p = 9, 8, 7, 3
	for _, axis := range []grid.Axis{grid.AxisX, grid.AxisY, grid.AxisZ} {
		slabs := grid.SlabDecompose3(n0, n1, n2, p, axis)
		res, err := Run(p, Sim, DefaultOptions(), func(c *Comm) [2]float64 {
			sl := slabs[c.Rank()]
			g := sl.NewLocal3(1)
			g.FillFunc(func(i, j, k int) float64 {
				gi, gj, gk := i, j, k
				switch axis {
				case grid.AxisX:
					gi = sl.ToGlobal(i)
				case grid.AxisY:
					gj = sl.ToGlobal(j)
				case grid.AxisZ:
					gk = sl.ToGlobal(k)
				}
				return f(gi, gj, gk)
			})
			c.ExchangeGhostPlanes(g, axis)
			var lo, hi float64
			switch axis {
			case grid.AxisX:
				lo, hi = g.At(-1, 1, 1), g.At(g.NX(), 1, 1)
			case grid.AxisY:
				lo, hi = g.At(1, -1, 1), g.At(1, g.NY(), 1)
			case grid.AxisZ:
				lo, hi = g.At(1, 1, -1), g.At(1, 1, g.NZ())
			}
			return [2]float64{lo, hi}
		})
		if err != nil {
			t.Fatalf("axis %v: %v", axis, err)
		}
		for r := 0; r < p; r++ {
			sl := slabs[r]
			var wantLo, wantHi float64
			switch axis {
			case grid.AxisX:
				wantLo, wantHi = f(sl.R.Lo-1, 1, 1), f(sl.R.Hi, 1, 1)
			case grid.AxisY:
				wantLo, wantHi = f(1, sl.R.Lo-1, 1), f(1, sl.R.Hi, 1)
			case grid.AxisZ:
				wantLo, wantHi = f(1, 1, sl.R.Lo-1), f(1, 1, sl.R.Hi)
			}
			if r > 0 && res[r][0] != wantLo {
				t.Fatalf("axis %v proc %d: lower ghost %v want %v", axis, r, res[r][0], wantLo)
			}
			if r < p-1 && res[r][1] != wantHi {
				t.Fatalf("axis %v proc %d: upper ghost %v want %v", axis, r, res[r][1], wantHi)
			}
		}
	}
}

// jacobi3D runs a few steps of a 7-point Jacobi sweep decomposed along
// the given axis and returns the full field flattened.  Decomposing
// along any axis must give identical results (the decomposition is an
// implementation detail, not a semantic one).
func jacobi3D(t *testing.T, axis grid.Axis, p int) []float64 {
	t.Helper()
	const nx, ny, nz, steps = 10, 9, 8, 4
	slabs := grid.SlabDecompose3(nx, ny, nz, p, axis)
	res, err := Run(p, Sim, DefaultOptions(), func(c *Comm) *grid.G3 {
		sl := slabs[c.Rank()]
		cur := sl.NewLocal3(1)
		next := sl.NewLocal3(1)
		glob := func(i, j, k int) (int, int, int) {
			switch axis {
			case grid.AxisX:
				return sl.ToGlobal(i), j, k
			case grid.AxisY:
				return i, sl.ToGlobal(j), k
			default:
				return i, j, sl.ToGlobal(k)
			}
		}
		cur.FillFunc(func(i, j, k int) float64 {
			gi, gj, gk := glob(i, j, k)
			return float64(gi*gi+2*gj+3*gk) * 0.01
		})
		for s := 0; s < steps; s++ {
			c.ExchangeGhostPlanes(cur, axis)
			for i := 0; i < cur.NX(); i++ {
				for j := 0; j < cur.NY(); j++ {
					for k := 0; k < cur.NZ(); k++ {
						gi, gj, gk := glob(i, j, k)
						get := func(di, dj, dk int) float64 {
							ni, nj, nk := gi+di, gj+dj, gk+dk
							if ni < 0 || ni >= nx || nj < 0 || nj >= ny || nk < 0 || nk >= nz {
								return 0
							}
							return cur.At(i+di, j+dj, k+dk)
						}
						v := (get(-1, 0, 0) + get(1, 0, 0) + get(0, -1, 0) +
							get(0, 1, 0) + get(0, 0, -1) + get(0, 0, 1)) / 6
						next.Set(i, j, k, v)
					}
				}
			}
			cur, next = next, cur
		}
		// Gather along x only works for AxisX; flatten and ship via a
		// reduction-free path: return the local grid and let the test
		// reassemble per-slab.
		return cur
	})
	if err != nil {
		t.Fatal(err)
	}
	// Reassemble globally from the per-process local sections.
	out := make([]float64, nx*ny*nz)
	for r, g := range res {
		sl := slabs[r]
		for i := 0; i < g.NX(); i++ {
			for j := 0; j < g.NY(); j++ {
				for k := 0; k < g.NZ(); k++ {
					gi, gj, gk := i, j, k
					switch axis {
					case grid.AxisX:
						gi = sl.ToGlobal(i)
					case grid.AxisY:
						gj = sl.ToGlobal(j)
					case grid.AxisZ:
						gk = sl.ToGlobal(k)
					}
					out[(gi*ny+gj)*nz+gk] = g.At(i, j, k)
				}
			}
		}
	}
	return out
}

func TestJacobiAgreesAcrossDecompositionAxes(t *testing.T) {
	ref := jacobi3D(t, grid.AxisX, 1)
	for _, axis := range []grid.Axis{grid.AxisX, grid.AxisY, grid.AxisZ} {
		for _, p := range []int{2, 4} {
			got := jacobi3D(t, axis, p)
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("axis %v p=%d: decomposition changed the result", axis, p)
			}
		}
	}
}

func TestDirectionalAllAxes(t *testing.T) {
	const p = 3
	for _, axis := range []grid.Axis{grid.AxisY, grid.AxisZ} {
		slabs := grid.SlabDecompose3(6, 9, 12, p, axis)
		res, err := Run(p, Sim, DefaultOptions(), func(c *Comm) [2]float64 {
			sl := slabs[c.Rank()]
			g := sl.NewLocal3(1)
			g.FillFunc(func(i, j, k int) float64 {
				switch axis {
				case grid.AxisY:
					return float64(sl.ToGlobal(j))
				default:
					return float64(sl.ToGlobal(k))
				}
			})
			c.SendUp(axis, g)
			c.SendDown(axis, g)
			switch axis {
			case grid.AxisY:
				return [2]float64{g.At(0, -1, 0), g.At(0, g.NY(), 0)}
			default:
				return [2]float64{g.At(0, 0, -1), g.At(0, 0, g.NZ())}
			}
		})
		if err != nil {
			t.Fatalf("axis %v: %v", axis, err)
		}
		for r := 0; r < p; r++ {
			sl := slabs[r]
			if r > 0 && res[r][0] != float64(sl.R.Lo-1) {
				t.Fatalf("axis %v proc %d: SendUp ghost %v", axis, r, res[r][0])
			}
			if r < p-1 && res[r][1] != float64(sl.R.Hi) {
				t.Fatalf("axis %v proc %d: SendDown ghost %v", axis, r, res[r][1])
			}
		}
	}
}

func TestAxisExchangePanics(t *testing.T) {
	_, err := Run(2, Sim, DefaultOptions(), func(c *Comm) bool {
		defer func() { recover() }()
		g := grid.New3(4, 4, 4, 0)
		c.ExchangeGhostPlanes(g, grid.AxisY)
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(2, Sim, DefaultOptions(), func(c *Comm) bool {
		defer func() { recover() }()
		a := grid.New3G(4, 4, 4, 0, 1, 0)
		b := grid.New3G(4, 5, 4, 0, 1, 0)
		c.SendUp(grid.AxisY, a, b)
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
}
