package mesh

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/machine"
)

// mkFields builds the six-grid field set of an FDTD-like application on
// one rank's slab, each grid filled with a distinct pattern.
func mkFields(sl grid.Slab, rank int) []*grid.G3 {
	gs := make([]*grid.G3, 6)
	for gi := range gs {
		g := sl.NewLocal3(1)
		gi := gi
		g.FillFunc(func(i, j, k int) float64 {
			return float64(10000*gi+100*sl.ToGlobal(i)+10*j) + float64(k)
		})
		gs[gi] = g
	}
	return gs
}

// TestMultiExchangeMatchesPerField: the coalesced multi-grid exchange
// must leave every ghost plane bitwise identical to six separate
// per-field exchanges, under both runtimes and with combining on or
// off.
func TestMultiExchangeMatchesPerField(t *testing.T) {
	const nx, ny, nz, p = 12, 4, 3, 4
	slabs := grid.SlabDecompose3(nx, ny, nz, p, grid.AxisX)
	ghosts := func(exchange func(c *Comm, gs []*grid.G3), combine bool, mode Mode) [][]float64 {
		opt := DefaultOptions()
		opt.Combine = combine
		res, err := Run(p, mode, opt, func(c *Comm) []float64 {
			gs := mkFields(slabs[c.Rank()], c.Rank())
			exchange(c, gs)
			var out []float64
			for _, g := range gs {
				out = append(out, g.PackPlane(grid.AxisX, -1, nil)...)
				out = append(out, g.PackPlane(grid.AxisX, g.NX(), nil)...)
			}
			return out
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	perField := func(c *Comm, gs []*grid.G3) {
		for _, g := range gs {
			c.ExchangeGhostPlanes(g, grid.AxisX)
		}
	}
	multi := func(c *Comm, gs []*grid.G3) {
		c.ExchangeGhostPlanesMulti(grid.AxisX, gs...)
	}
	for _, mode := range bothModes {
		for _, combine := range []bool{true, false} {
			want := ghosts(perField, combine, mode)
			got := ghosts(multi, combine, mode)
			for r := range want {
				if len(want[r]) != len(got[r]) {
					t.Fatalf("%v combine=%v rank %d: ghost lengths differ", mode, combine, r)
				}
				for i := range want[r] {
					if want[r][i] != got[r][i] {
						t.Fatalf("%v combine=%v rank %d: ghost %d differs: %v vs %v",
							mode, combine, r, i, got[r][i], want[r][i])
					}
				}
			}
		}
	}
}

// TestMultiExchangeCoalescesMessages verifies the headline reduction:
// refreshing six fields with one coalesced exchange sends one message
// per neighbour per direction instead of six — a 6x (>= the required
// 4x) cut in the per-step message count of a 3-D FDTD-style exchange.
func TestMultiExchangeCoalescesMessages(t *testing.T) {
	const nx, ny, nz, p = 12, 4, 3, 4
	slabs := grid.SlabDecompose3(nx, ny, nz, p, grid.AxisX)
	count := func(exchange func(c *Comm, gs []*grid.G3)) int {
		ta := machine.NewTally(p)
		opt := DefaultOptions()
		opt.Tally = ta
		_, err := Run(p, Sim, opt, func(c *Comm) int {
			gs := mkFields(slabs[c.Rank()], c.Rank())
			exchange(c, gs)
			return 0
		})
		if err != nil {
			t.Fatal(err)
		}
		return ta.TotalMessages()
	}
	perField := count(func(c *Comm, gs []*grid.G3) {
		for _, g := range gs {
			c.ExchangeGhostPlanes(g, grid.AxisX)
		}
	})
	multi := count(func(c *Comm, gs []*grid.G3) {
		c.ExchangeGhostPlanesMulti(grid.AxisX, gs...)
	})
	if multi == 0 || perField != 6*multi {
		t.Fatalf("six-field exchange should coalesce 6x: per-field=%d multi=%d", perField, multi)
	}
	if perField < 4*multi {
		t.Fatalf("acceptance: need >= 4x message reduction, got %dx", perField/multi)
	}
}

// TestSplitExchangeMatchesUnsplit: the overlap primitives (Start/Finish
// halves with computation between) must produce exactly the ghosts of
// the unsplit directional exchange, and the same message totals.
func TestSplitExchangeMatchesUnsplit(t *testing.T) {
	const nx, ny, nz, p = 9, 3, 3, 3
	slabs := grid.SlabDecompose3(nx, ny, nz, p, grid.AxisX)
	run := func(split bool, mode Mode) ([][2]float64, int) {
		ta := machine.NewTally(p)
		opt := DefaultOptions()
		opt.Tally = ta
		res, err := Run(p, mode, opt, func(c *Comm) [2]float64 {
			r, pp := c.Rank(), c.P()
			sl := slabs[r]
			a := sl.NewLocal3(1)
			b := sl.NewLocal3(1)
			a.FillFunc(func(i, j, k int) float64 { return float64(sl.ToGlobal(i)) })
			b.FillFunc(func(i, j, k int) float64 { return float64(100 + sl.ToGlobal(i)) })
			xUp, xDown := -1, -1
			if r < pp-1 {
				xUp = r + 1
			}
			if r > 0 {
				xDown = r - 1
			}
			if split {
				c.StartSendUpTo(grid.AxisX, xUp, a, b)
				// Interior work would happen here, messages in flight.
				c.FinishSendUpTo(grid.AxisX, xDown, a, b)
				c.StartSendDownTo(grid.AxisX, xDown, a, b)
				c.FinishSendDownTo(grid.AxisX, xUp, a, b)
			} else {
				c.SendUpTo(grid.AxisX, xUp, xDown, a, b)
				c.SendDownTo(grid.AxisX, xDown, xUp, a, b)
			}
			return [2]float64{a.At(-1, 0, 0), b.At(b.NX(), 0, 0)}
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make([][2]float64, len(res))
		copy(out, res)
		return out, ta.TotalMessages()
	}
	for _, mode := range bothModes {
		wantGhosts, wantMsgs := run(false, mode)
		gotGhosts, gotMsgs := run(true, mode)
		for r := range wantGhosts {
			if wantGhosts[r] != gotGhosts[r] {
				t.Fatalf("%v rank %d: split ghosts %v, unsplit %v", mode, r, gotGhosts[r], wantGhosts[r])
			}
		}
		if wantMsgs != gotMsgs {
			t.Fatalf("%v: split sends %d messages, unsplit %d", mode, gotMsgs, wantMsgs)
		}
	}
}
