package mesh

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/grid"
	"repro/internal/machine"
)

// buildLocal2 fills a local 2-D section so that every interior cell
// holds its unique global value f(globalX, y).
func buildLocal2(rg grid.Range, ny, ghost int, f func(gx, y int) float64) *grid.G2 {
	g := grid.New2(rg.Len(), ny, ghost)
	g.FillFunc(func(i, j int) float64 { return f(rg.Lo+i, j) })
	return g
}

func TestExchangeGhostRows(t *testing.T) {
	f := func(gx, y int) float64 { return float64(1000*gx + y) }
	const nx, ny = 13, 4
	for _, combine := range []bool{true, false} {
		for _, mode := range bothModes {
			for _, p := range []int{2, 3, 5} {
				ranges := grid.Decompose(nx, p)
				opt := DefaultOptions()
				opt.Combine = combine
				res, err := Run(p, mode, opt, func(c *Comm) []float64 {
					rg := ranges[c.Rank()]
					g := buildLocal2(rg, ny, 1, f)
					c.ExchangeGhostRows(g)
					// Return the ghost rows for verification.
					out := make([]float64, 0, 2*ny)
					for j := 0; j < ny; j++ {
						out = append(out, g.At(-1, j))
					}
					for j := 0; j < ny; j++ {
						out = append(out, g.At(rg.Len(), j))
					}
					return out
				})
				if err != nil {
					t.Fatalf("combine=%v %v p=%d: %v", combine, mode, p, err)
				}
				for r, ghost := range res {
					rg := ranges[r]
					for j := 0; j < ny; j++ {
						if r > 0 {
							want := f(rg.Lo-1, j)
							if ghost[j] != want {
								t.Fatalf("p=%d proc %d lower ghost[%d] = %v want %v", p, r, j, ghost[j], want)
							}
						}
						if r < p-1 {
							want := f(rg.Hi, j)
							if ghost[ny+j] != want {
								t.Fatalf("p=%d proc %d upper ghost[%d] = %v want %v", p, r, j, ghost[ny+j], want)
							}
						}
					}
				}
			}
		}
	}
}

func TestExchangeGhostRowsWidth2(t *testing.T) {
	f := func(gx, y int) float64 { return float64(gx)*7.5 - float64(y) }
	const nx, ny, w = 12, 3, 2
	ranges := grid.Decompose(nx, 3)
	res, err := Run(3, Sim, DefaultOptions(), func(c *Comm) [][]float64 {
		rg := ranges[c.Rank()]
		g := buildLocal2(rg, ny, w, f)
		c.ExchangeGhostRows(g)
		var rows [][]float64
		for i := -w; i < 0; i++ {
			row := make([]float64, ny)
			for j := range row {
				row[j] = g.At(i, j)
			}
			rows = append(rows, row)
		}
		return rows
	})
	if err != nil {
		t.Fatal(err)
	}
	// Process 1's ghost rows -2,-1 are global rows Lo-2, Lo-1.
	rg := ranges[1]
	for k, row := range res[1] {
		gx := rg.Lo - w + k
		for j, v := range row {
			if v != f(gx, j) {
				t.Fatalf("ghost row %d col %d = %v want %v", k, j, v, f(gx, j))
			}
		}
	}
}

func TestExchangeGhostPlanesX(t *testing.T) {
	f := func(gx, y, z int) float64 { return float64(10000*gx + 100*y + z) }
	const nx, ny, nz = 9, 3, 4
	for _, combine := range []bool{true, false} {
		for _, p := range []int{2, 3} {
			slabs := grid.SlabDecompose3(nx, ny, nz, p, grid.AxisX)
			opt := DefaultOptions()
			opt.Combine = combine
			res, err := Run(p, Sim, opt, func(c *Comm) [2]float64 {
				sl := slabs[c.Rank()]
				g := sl.NewLocal3(1)
				g.FillFunc(func(i, j, k int) float64 { return f(sl.ToGlobal(i), j, k) })
				c.ExchangeGhostPlanesX(g)
				// Sample one ghost cell each side.
				var out [2]float64
				out[0] = g.At(-1, 1, 2)
				out[1] = g.At(g.NX(), 1, 2)
				return out
			})
			if err != nil {
				t.Fatalf("combine=%v p=%d: %v", combine, p, err)
			}
			for r, pair := range res {
				sl := slabs[r]
				if r > 0 && pair[0] != f(sl.R.Lo-1, 1, 2) {
					t.Fatalf("p=%d proc %d lower ghost = %v want %v", p, r, pair[0], f(sl.R.Lo-1, 1, 2))
				}
				if r < p-1 && pair[1] != f(sl.R.Hi, 1, 2) {
					t.Fatalf("p=%d proc %d upper ghost = %v want %v", p, r, pair[1], f(sl.R.Hi, 1, 2))
				}
			}
		}
	}
}

func TestGhostExchangePanicsWithoutGhosts(t *testing.T) {
	_, err := Run(2, Sim, DefaultOptions(), func(c *Comm) bool {
		defer func() { recover() }()
		g := grid.New2(4, 4, 0)
		c.ExchangeGhostRows(g)
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterGatherRoundTrip3D(t *testing.T) {
	const nx, ny, nz = 11, 4, 3
	global := grid.New3(nx, ny, nz, 0)
	rng := rand.New(rand.NewSource(8))
	global.FillFunc(func(i, j, k int) float64 { return rng.NormFloat64() })
	for _, combine := range []bool{true, false} {
		for _, mode := range bothModes {
			for _, p := range []int{1, 2, 4} {
				slabs := grid.SlabDecompose3(nx, ny, nz, p, grid.AxisX)
				opt := DefaultOptions()
				opt.Combine = combine
				res, err := Run(p, mode, opt, func(c *Comm) *grid.G3 {
					var src *grid.G3
					if c.Rank() == 0 {
						src = global
					}
					local := c.ScatterX(src, slabs, 0, 1)
					// Verify local contents in passing.
					sl := slabs[c.Rank()]
					for i := 0; i < local.NX(); i++ {
						if local.At(i, 1, 1) != global.At(sl.ToGlobal(i), 1, 1) {
							panic("scatter delivered wrong plane")
						}
					}
					return c.GatherX(local, slabs, 0)
				})
				if err != nil {
					t.Fatalf("combine=%v %v p=%d: %v", combine, mode, p, err)
				}
				if res[0] == nil || !res[0].Equal(global) {
					t.Fatalf("combine=%v %v p=%d: gather(scatter(g)) != g", combine, mode, p)
				}
				for r := 1; r < p; r++ {
					if res[r] != nil {
						t.Fatalf("non-root %d should return nil from GatherX", r)
					}
				}
			}
		}
	}
}

func TestScatterGatherRoundTrip2D(t *testing.T) {
	const nx, ny = 10, 5
	global := grid.New2(nx, ny, 0)
	global.FillFunc(func(i, j int) float64 { return float64(i*100 + j) })
	for _, p := range []int{1, 2, 3} {
		ranges := grid.Decompose(nx, p)
		res, err := Run(p, Sim, DefaultOptions(), func(c *Comm) *grid.G2 {
			var src *grid.G2
			if c.Rank() == 0 {
				src = global
			}
			local := c.ScatterRows(src, ranges, 1, 0)
			return c.GatherRows(local, ranges, nx, 0)
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if res[0] == nil || !res[0].Equal(global) {
			t.Fatalf("p=%d: 2-D round trip failed", p)
		}
	}
}

func TestGatherToNonZeroRoot(t *testing.T) {
	const nx, ny, nz = 6, 2, 2
	slabs := grid.SlabDecompose3(nx, ny, nz, 3, grid.AxisX)
	res, err := Run(3, Sim, DefaultOptions(), func(c *Comm) *grid.G3 {
		sl := slabs[c.Rank()]
		local := sl.NewLocal3(0)
		local.FillFunc(func(i, j, k int) float64 { return float64(sl.ToGlobal(i)) })
		return c.GatherX(local, slabs, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != nil || res[1] != nil || res[2] == nil {
		t.Fatal("only root 2 should hold the gathered grid")
	}
	for i := 0; i < nx; i++ {
		if res[2].At(i, 0, 0) != float64(i) {
			t.Fatalf("gathered plane %d wrong", i)
		}
	}
}

func TestCombiningReducesMessages(t *testing.T) {
	// Ghost width 2 and 3 processes: uncombined sends one message per
	// plane; combined sends one per neighbour.  The payload bytes must
	// be identical either way.
	run := func(combine bool) (msgs int, bytes int64) {
		ta := machine.NewTally(3)
		opt := DefaultOptions()
		opt.Combine = combine
		opt.Tally = ta
		ranges := grid.Decompose(12, 3)
		_, err := Run(3, Sim, opt, func(c *Comm) int {
			g := buildLocal2(ranges[c.Rank()], 4, 2, func(gx, y int) float64 { return 1 })
			c.ExchangeGhostRows(g)
			return 0
		})
		if err != nil {
			t.Fatal(err)
		}
		return ta.TotalMessages(), ta.TotalBytes()
	}
	mc, bc := run(true)
	mu, bu := run(false)
	if mu != 2*mc {
		t.Fatalf("ghost width 2: uncombined %d msgs, combined %d", mu, mc)
	}
	if bc != bu {
		t.Fatalf("payload must match: %d vs %d", bc, bu)
	}
}

func TestGhostExchangeSimEqualsPar(t *testing.T) {
	// A diffusion-like sweep with exchanges every step: Sim and Par
	// results must be bitwise identical.
	const nx, ny, steps, p = 16, 6, 5, 4
	ranges := grid.Decompose(nx, p)
	prog := func(c *Comm) []float64 {
		rg := ranges[c.Rank()]
		g := buildLocal2(rg, ny, 1, func(gx, y int) float64 {
			return float64(gx*gx) * 0.013 * float64(y+1)
		})
		next := g.Clone()
		for s := 0; s < steps; s++ {
			c.ExchangeGhostRows(g)
			for i := 0; i < g.NX(); i++ {
				gi := rg.Lo + i
				for j := 0; j < ny; j++ {
					up := g.At(i+1, j)
					down := g.At(i-1, j)
					if gi == 0 {
						down = 0
					}
					if gi == nx-1 {
						up = 0
					}
					next.Set(i, j, 0.25*down+0.5*g.At(i, j)+0.25*up)
				}
			}
			g, next = next, g
		}
		out := make([]float64, 0, g.NX()*ny)
		for i := 0; i < g.NX(); i++ {
			out = append(out, g.Row(i)...)
		}
		return out
	}
	sim, err := Run(p, Sim, DefaultOptions(), prog)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(p, Par, DefaultOptions(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sim, par) {
		t.Fatal("Sim and Par diverged on ghost-exchange sweep")
	}
}
