// Package mesh implements the paper's mesh archetype: the communication
// library and runtime support for parallel programs structured as grid
// operations, reductions, and file I/O over 1-, 2-, or 3-dimensional
// grids distributed as regular contiguous subgrids.
//
// Applications are written once, in SPMD style, as a function of a
// *Comm, and can then be executed under two interchangeable runtimes:
//
//   - Sim: the sequential simulated-parallel execution.  Exactly one
//     simulated process runs at a time under a deterministic schedule
//     (each process runs until it blocks on a receive), so the whole
//     execution is sequential and reproducible — this is the paper's
//     "sequential simulated-parallel version", and the archetype
//     library is "made available in both parallel and simulated-
//     parallel versions".
//   - Par: real concurrent execution with one goroutine per process
//     over single-reader single-writer channels with infinite slack.
//
// By Theorem 1, a deterministic SPMD program produces identical results
// under both runtimes; the fdtd package's tests verify this bitwise.
//
// The communication operations are the archetype's catalogue:
// boundary exchange (ExchangeGhostRows / ExchangeGhostPlanesX),
// broadcast of global data (Broadcast, BroadcastVec), reductions
// (AllReduce, AllReduceVec, with recursive-doubling and all-to-one
// algorithms), and host↔grid redistribution for file I/O (GatherX,
// ScatterX, GatherRows, ScatterRows).
package mesh

import (
	"fmt"
	"time"

	"repro/internal/channel"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Mode selects a runtime.
type Mode int

// Runtimes.
const (
	// Sim is the sequential simulated-parallel execution.
	Sim Mode = iota
	// Par is the real concurrent execution.
	Par
)

func (m Mode) String() string {
	switch m {
	case Sim:
		return "simulated-parallel"
	case Par:
		return "parallel"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Msg is the payload of archetype messages: a flat vector of float64.
type Msg struct {
	Data []float64
}

// Options configures a run.
type Options struct {
	// Combine merges the per-plane messages of a ghost exchange into
	// one message per neighbour (the paper's "group of message-passing
	// operations with a common sender and a common receiver can be
	// combined for efficiency").  On by default via DefaultOptions.
	Combine bool
	// ReduceAlg selects the reduction algorithm.
	ReduceAlg ReduceAlg
	// Tally, if non-nil, records per-phase work and message counts for
	// the machine performance model's bulk-synchronous bound.
	Tally *machine.Tally
	// Events, if non-nil, records the full per-process event sequence
	// for the machine model's discrete-event replay (machine.Model.DES),
	// which preserves the actual wait-for structure instead of
	// synchronising every phase globally.
	Events *machine.EventLog
	// StallTimeout arms the Par-mode stall watchdog (see
	// sched.Options.StallTimeout).  Exact deadlocks are detected
	// immediately regardless; this additionally bounds hangs the exact
	// detector cannot see.  Zero disables the watchdog.
	StallTimeout time.Duration
	// WrapEndpoint, if non-nil, wraps every Par-mode channel endpoint —
	// the fault-injection seam for message-delivery faults (see
	// sched.Options.WrapEndpoint).
	WrapEndpoint func(from, to int, e channel.Endpoint[Msg]) channel.Endpoint[Msg]
	// Obs, if non-nil, collects wall-clock observability: per-rank
	// send/recv/step/block counters (with payload bytes at 8 bytes per
	// float64) and phase timers.  Every archetype operation marks its
	// phase — boundary exchanges as obs.PhaseExchange, collectives as
	// obs.PhaseCollective, gather/scatter as obs.PhaseIO — and the time
	// between operations is compute.  The collector's P must match the
	// run's.  Works under both runtimes; under Sim the times measure the
	// simulation, not parallel execution (use machine.Model for modelled
	// parallel time).
	Obs *obs.Collector
	// ChanStats, if non-nil, counts per-channel traffic and queue
	// high-water marks via counting endpoint decorators.  Par mode only
	// (it rides the endpoint-wrapping seam); its P must match the run's.
	// When combined with WrapEndpoint, fault wrappers sit inside the
	// counters, so ChanStats sees what the program attempts to send.
	ChanStats *channel.NetStats
	// Overlap lets applications split their boundary exchanges into a
	// send half and a receive half (StartSendUpTo / FinishSendUpTo and
	// the SendDown counterparts) so that interior cells are updated
	// while ghost messages are in flight.  The library primitives exist
	// regardless; this flag is the application-facing switch the fdtd
	// builds consult.  Results are bitwise identical either way: the
	// split only defers the receive past computations that do not read
	// ghost cells.  On by default via DefaultOptions.
	Overlap bool
	// Transport, if non-nil, carries Par-mode messages over an external
	// substrate — e.g. a loopback socket mesh built with
	// channel.NewLoopbackMesh(p, network, mesh.WireCodec(), ...) — in
	// place of the default in-process channel network.  Its P must match
	// the run's.  Sim mode rejects it: the simulated-parallel executor
	// is by construction sequential and in-process.  The caller retains
	// ownership and should Close the transport after the run.
	Transport channel.Transport[Msg]
	// Workers is the per-rank worker count for tiled compute kernels
	// (applications consult it via Comm.Workers).  0 means one worker
	// per available CPU (GOMAXPROCS); 1 forces serial kernels.  Tiles
	// are partitioned and combined in a fixed deterministic order, so
	// the worker count never changes results.
	Workers int
}

// DefaultOptions returns the archetype defaults: combined messages,
// recursive-doubling reductions, and overlapped boundary exchanges.
func DefaultOptions() Options {
	return Options{Combine: true, ReduceAlg: RecursiveDoubling, Overlap: true}
}

// Comm is one process's handle to the archetype library.  It is valid
// only within the function passed to Run.
type Comm struct {
	ctx   *sched.Ctx[Msg]
	opt   Options
	phase int // this process's bulk-synchronous phase index
}

// Rank returns this process's rank in [0, P).
func (c *Comm) Rank() int { return c.ctx.ID() }

// P returns the number of processes.
func (c *Comm) P() int { return c.ctx.P() }

// Options returns the run options (read-only by convention).
func (c *Comm) Options() Options { return c.opt }

// Work credits compute work (in abstract units, e.g. cell updates) to
// this process in its current phase, for the performance model.
func (c *Comm) Work(units float64) {
	if c.opt.Tally != nil {
		c.opt.Tally.AddWork(c.phase, c.Rank(), units)
	}
	if c.opt.Events != nil {
		c.opt.Events.AddWork(c.Rank(), units)
	}
}

// send transmits data to process `to`, recording it in the tally.  The
// slice is copied (into a pooled buffer): archetype messages never
// alias sender memory, just as real message passing cannot.  Hot paths
// that already pack into a getBuf buffer should call sendOwned instead
// and skip this copy.
func (c *Comm) send(to int, data []float64) {
	buf := getBuf(len(data))
	copy(buf, data)
	c.sendOwned(to, buf)
}

// sendOwned transmits data to process `to`, transferring ownership of
// the slice: the caller must not touch data afterwards.  The receiver
// returns the buffer to the arena (putBuf) once consumed.  This is the
// zero-copy half of the messaging fast path: pack with getBuf +
// grid.Pack* directly into the message payload, then hand it off.
func (c *Comm) sendOwned(to int, data []float64) {
	c.ctx.Send(to, Msg{Data: data})
	if c.opt.Tally != nil {
		c.opt.Tally.Message(c.phase, c.Rank(), to, 8*len(data))
	}
	if c.opt.Events != nil {
		c.opt.Events.AddSend(c.Rank(), to, 8*len(data))
	}
}

// recv receives the next message from process `from`.
func (c *Comm) recv(from int) []float64 {
	m := c.ctx.Recv(from)
	if c.opt.Events != nil {
		c.opt.Events.AddRecv(c.Rank(), from)
	}
	return m.Data
}

// flush marks the end of an operation's send section: on a socket
// transport it seals every frame queued since the last flush into one
// vectored write per neighbour, so an exchange phase costs one syscall
// per link.  On in-process transports it is a no-op.  The runtime also
// flushes automatically before blocking in a receive and at process
// termination, so this is a batching boundary, not a correctness
// requirement.
func (c *Comm) flush() { c.ctx.Flush() }

// beginPhase opens an observability span for one archetype operation;
// the operation's endPhase call closes it.  Every operation that calls
// endPhase calls beginPhase first, so the wall-clock spans pair exactly
// with the bulk-synchronous phase structure.
func (c *Comm) beginPhase(ph obs.Phase, label string) {
	c.opt.Obs.Begin(c.Rank(), ph, label)
}

// endPhase closes this process's current bulk-synchronous phase.
// Every collective calls it exactly once, so all processes advance
// through the same phase sequence.
func (c *Comm) endPhase(label string) {
	if c.opt.Tally != nil && c.Rank() == 0 {
		c.opt.Tally.Label(c.phase, label)
	}
	c.opt.Obs.End(c.Rank())
	c.phase++
}

// Run executes the SPMD function f on p processes under the given mode
// and returns the per-process results.  Under Sim the execution is
// sequential and deterministic; under Par it uses one goroutine per
// process.
//
// Both runtimes are supervised: a process panic is recovered and
// returned as an error (wrapping the panic value when it is an error),
// and a deadlocked network returns a diagnostic error naming the
// blocked ranks and empty channels instead of hanging.  A correct
// archetype program produces neither, so callers may treat any error as
// a program or injected fault.  On error the results are partial and
// must not be used.
func Run[R any](p int, mode Mode, opt Options, f func(c *Comm) R) ([]R, error) {
	if p <= 0 {
		return nil, fmt.Errorf("mesh: process count must be positive, got %d", p)
	}
	if opt.Obs != nil && opt.Obs.P() != p {
		return nil, fmt.Errorf("mesh: obs collector sized for %d processes, run has %d", opt.Obs.P(), p)
	}
	if opt.ChanStats != nil && opt.ChanStats.P() != p {
		return nil, fmt.Errorf("mesh: channel stats sized for %d processes, run has %d", opt.ChanStats.P(), p)
	}
	if opt.Transport != nil {
		if mode != Par {
			return nil, fmt.Errorf("mesh: external transports require Par mode, got %v", mode)
		}
		if opt.Transport.P() != p {
			return nil, fmt.Errorf("mesh: transport built for %d processes, run has %d", opt.Transport.P(), p)
		}
	}
	procs := Procs(p, opt, f)
	wrap := opt.WrapEndpoint
	if stats := opt.ChanStats; stats != nil {
		inner := wrap
		wrap = func(from, to int, e channel.Endpoint[Msg]) channel.Endpoint[Msg] {
			if inner != nil {
				e = inner(from, to, e)
			}
			return channel.Counted(stats, from, to, e)
		}
	}
	schedOpt := sched.Options[Msg]{
		Tag:          func(m Msg) string { return fmt.Sprintf("[%d]f64", len(m.Data)) },
		StallTimeout: opt.StallTimeout,
		WrapEndpoint: wrap,
		Collector:    opt.Obs,
		MsgBytes:     func(m Msg) int { return 8 * len(m.Data) },
		Transport:    opt.Transport,
	}
	switch mode {
	case Sim:
		// Lowest-rank-first scheduling: each simulated process runs
		// until it blocks on a receive — the sequential simulated-
		// parallel order of the paper's Figure 1.
		return sched.RunControlled(procs, sched.Lowest{}, schedOpt)
	case Par:
		return sched.RunConcurrent(procs, schedOpt)
	default:
		return nil, fmt.Errorf("mesh: unknown mode %v", mode)
	}
}

// RunWorker executes one rank of the SPMD function f over a per-rank
// transport (channel.DialMesh) — the multi-process backend: each OS
// process calls RunWorker with its own rank and its own transport, and
// by Theorem 1 every rank's result is bitwise identical to the same
// rank's result under Run.  opt.Transport is ignored (tr takes its
// place); opt.StallTimeout is ignored (no per-process supervisor can
// see the whole network — the launcher bounds hangs instead).
func RunWorker[R any](rank int, tr channel.Transport[Msg], opt Options, f func(c *Comm) R) (R, error) {
	var zero R
	if tr == nil {
		return zero, fmt.Errorf("mesh: worker rank %d has no transport", rank)
	}
	p := tr.P()
	if rank < 0 || rank >= p {
		return zero, fmt.Errorf("mesh: worker rank %d out of range (P=%d)", rank, p)
	}
	if opt.Obs != nil && opt.Obs.P() != p {
		return zero, fmt.Errorf("mesh: obs collector sized for %d processes, run has %d", opt.Obs.P(), p)
	}
	if opt.ChanStats != nil && opt.ChanStats.P() != p {
		return zero, fmt.Errorf("mesh: channel stats sized for %d processes, run has %d", opt.ChanStats.P(), p)
	}
	wrap := opt.WrapEndpoint
	if stats := opt.ChanStats; stats != nil {
		inner := wrap
		wrap = func(from, to int, e channel.Endpoint[Msg]) channel.Endpoint[Msg] {
			if inner != nil {
				e = inner(from, to, e)
			}
			return channel.Counted(stats, from, to, e)
		}
	}
	schedOpt := sched.Options[Msg]{
		Tag:          func(m Msg) string { return fmt.Sprintf("[%d]f64", len(m.Data)) },
		WrapEndpoint: wrap,
		Collector:    opt.Obs,
		MsgBytes:     func(m Msg) int { return 8 * len(m.Data) },
	}
	return sched.RunWorker(rank, tr, func(ctx *sched.Ctx[Msg]) R {
		return f(&Comm{ctx: ctx, opt: opt})
	}, schedOpt)
}

// RunControlledPolicy executes the SPMD function under an explicit
// interleaving policy — used by the determinacy experiments to show
// that archetype programs reach the same final state under arbitrary
// maximal interleavings.
func RunControlledPolicy[R any](p int, pol sched.Policy, opt Options, f func(c *Comm) R) ([]R, error) {
	if p <= 0 {
		return nil, fmt.Errorf("mesh: process count must be positive, got %d", p)
	}
	return sched.RunControlled(Procs(p, opt, f), pol, sched.Options[Msg]{})
}

// Procs lowers the SPMD function to a plain network of sched processes,
// exposed so the determinacy and exploration tools can drive archetype
// programs under arbitrary policies and forced schedules.  Run and
// RunControlledPolicy wire the same lowering to the standard runtimes.
func Procs[R any](p int, opt Options, f func(c *Comm) R) []sched.Proc[Msg, R] {
	procs := make([]sched.Proc[Msg, R], p)
	for i := 0; i < p; i++ {
		procs[i] = func(ctx *sched.Ctx[Msg]) R {
			return f(&Comm{ctx: ctx, opt: opt})
		}
	}
	return procs
}
