package mesh

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/obs"
)

// Topo2D arranges P = PX*PY processes in a logical 2-D grid and
// distributes a global NX-by-NY data grid as a PX-by-PY array of
// contiguous blocks — the general form of the mesh archetype's
// "partitioning the data grid into regular contiguous subgrids".
// Process rank r sits at coordinates (r / PY, r % PY).
type Topo2D struct {
	NX, NY  int
	PX, PY  int
	XRanges []grid.Range
	YRanges []grid.Range
}

// NewTopo2D builds the topology; it panics if the grid cannot be
// decomposed (each process must own at least one row and column).
func NewTopo2D(nx, ny, px, py int) *Topo2D {
	return &Topo2D{
		NX: nx, NY: ny, PX: px, PY: py,
		XRanges: grid.Decompose(nx, px),
		YRanges: grid.Decompose(ny, py),
	}
}

// P returns the total process count.
func (t *Topo2D) P() int { return t.PX * t.PY }

// Coords returns the logical coordinates of a rank.
func (t *Topo2D) Coords(rank int) (rx, ry int) { return rank / t.PY, rank % t.PY }

// Rank returns the rank at logical coordinates (rx, ry), or -1 if the
// coordinates fall outside the process grid.
func (t *Topo2D) Rank(rx, ry int) int {
	if rx < 0 || rx >= t.PX || ry < 0 || ry >= t.PY {
		return -1
	}
	return rx*t.PY + ry
}

// Block returns the global index ranges owned by a rank.
func (t *Topo2D) Block(rank int) (xr, yr grid.Range) {
	rx, ry := t.Coords(rank)
	return t.XRanges[rx], t.YRanges[ry]
}

// NewLocal allocates rank's local section with the given ghost width
// on all four sides.
func (t *Topo2D) NewLocal(rank, ghost int) *grid.G2 {
	xr, yr := t.Block(rank)
	return grid.New2(xr.Len(), yr.Len(), ghost)
}

// Owner returns the rank owning global point (i, j).
func (t *Topo2D) Owner(i, j int) int {
	rx := grid.Owner(t.XRanges, i)
	ry := grid.Owner(t.YRanges, j)
	if rx < 0 || ry < 0 {
		return -1
	}
	return t.Rank(rx, ry)
}

// ExchangeGhost2D refreshes the ghost boundary of a 2-D local section
// in a 2-D block distribution: row strips travel to the x-neighbours,
// column strips to the y-neighbours, and, when corners is set, the
// corner blocks to the four diagonal neighbours (needed by 9-point
// stencils; 5-point stencils can pass corners=false and halve the
// neighbour count).  All sends precede all receives.
func (c *Comm) ExchangeGhost2D(g *grid.G2, t *Topo2D, corners bool) {
	if c.P() != t.P() {
		panic(fmt.Sprintf("mesh: topology has %d processes, run has %d", t.P(), c.P()))
	}
	w := g.Ghost()
	if w == 0 {
		panic("mesh: ExchangeGhost2D requires a ghost boundary")
	}
	nx, ny := g.NX(), g.NY()
	if 2*w > nx || 2*w > ny {
		panic(fmt.Sprintf("mesh: ghost width %d too large for %dx%d local block", w, nx, ny))
	}
	c.beginPhase(obs.PhaseExchange, "ghost-exchange-2d")
	rx, ry := t.Coords(c.Rank())
	up := t.Rank(rx-1, ry)
	down := t.Rank(rx+1, ry)
	left := t.Rank(rx, ry-1)
	right := t.Rank(rx, ry+1)
	ul := t.Rank(rx-1, ry-1)
	ur := t.Rank(rx-1, ry+1)
	dl := t.Rank(rx+1, ry-1)
	dr := t.Rank(rx+1, ry+1)

	// sendCorner packs a w-by-w corner block into a pooled buffer and
	// hands it off to the channel.
	sendCorner := func(to, i0, j0 int) {
		buf := getBuf(w * w)
		g.PackBlock(i0, j0, w, w, buf)
		c.sendOwned(to, buf)
	}
	recvCorner := func(from, i0, j0 int) {
		buf := c.recv(from)
		g.UnpackBlock(i0, j0, w, w, buf)
		putBuf(buf)
	}

	// Sends: edge strips, then corner blocks.
	if up >= 0 {
		c.sendPlanes(up, w, ny, func(k int, dst []float64) { g.PackRow(k, 0, ny, dst) })
	}
	if down >= 0 {
		c.sendPlanes(down, w, ny, func(k int, dst []float64) { g.PackRow(nx-w+k, 0, ny, dst) })
	}
	if left >= 0 {
		c.sendPlanes(left, w, nx, func(k int, dst []float64) { g.PackCol(k, 0, nx, dst) })
	}
	if right >= 0 {
		c.sendPlanes(right, w, nx, func(k int, dst []float64) { g.PackCol(ny-w+k, 0, nx, dst) })
	}
	if corners {
		if ul >= 0 {
			sendCorner(ul, 0, 0)
		}
		if ur >= 0 {
			sendCorner(ur, 0, ny-w)
		}
		if dl >= 0 {
			sendCorner(dl, nx-w, 0)
		}
		if dr >= 0 {
			sendCorner(dr, nx-w, ny-w)
		}
	}
	// Receives, mirroring the neighbours' sends.
	if up >= 0 {
		c.recvPlanes(up, w, func(k int, data []float64) { g.UnpackRow(-w+k, 0, data) })
	}
	if down >= 0 {
		c.recvPlanes(down, w, func(k int, data []float64) { g.UnpackRow(nx+k, 0, data) })
	}
	if left >= 0 {
		c.recvPlanes(left, w, func(k int, data []float64) { g.UnpackCol(-w+k, 0, data) })
	}
	if right >= 0 {
		c.recvPlanes(right, w, func(k int, data []float64) { g.UnpackCol(ny+k, 0, data) })
	}
	if corners {
		if ul >= 0 {
			recvCorner(ul, -w, -w)
		}
		if ur >= 0 {
			recvCorner(ur, -w, ny)
		}
		if dl >= 0 {
			recvCorner(dl, nx, -w)
		}
		if dr >= 0 {
			recvCorner(dr, nx, ny)
		}
	}
	c.endPhase("ghost-exchange-2d")
}

// Gather2D collects a 2-D block-distributed grid onto root, returning
// the assembled global grid there and nil elsewhere.
func (c *Comm) Gather2D(local *grid.G2, t *Topo2D, root int) *grid.G2 {
	c.beginPhase(obs.PhaseIO, "gather-2d")
	defer c.endPhase("gather-2d")
	r := c.Rank()
	if r != root {
		buf := getBuf(local.NX() * local.NY())
		local.PackBlock(0, 0, local.NX(), local.NY(), buf)
		c.sendOwned(root, buf)
		return nil
	}
	// The full receive area is the preallocated global grid itself;
	// every block — own and received — is written straight into place.
	global := grid.New2(t.NX, t.NY, 0)
	xr, yr := t.Block(root)
	for i := 0; i < local.NX(); i++ {
		global.UnpackRow(xr.Lo+i, yr.Lo, local.Row(i))
	}
	for src := 0; src < c.P(); src++ {
		if src == root {
			continue
		}
		sxr, syr := t.Block(src)
		buf := c.recv(src)
		global.UnpackBlock(sxr.Lo, syr.Lo, sxr.Len(), syr.Len(), buf)
		putBuf(buf)
	}
	return global
}
