//go:build race

package mesh

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
