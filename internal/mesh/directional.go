package mesh

import "repro/internal/grid"

// Directional boundary exchange along x.  A full ghost exchange
// refreshes both sides, but stencils like the FDTD leapfrog only need
// one direction per half-step: the E update reads H at i-1 (data flows
// up the ranks), the H update reads E at i+1 (data flows down).
// Exchanging only the needed direction halves the communication volume.
//
// Both operations accept several grids at once: when message combining
// is enabled, the boundary planes of all grids travel to a neighbour in
// a single message — the paper's combining of message-passing
// operations "with a common sender and a common receiver".
//
// These are the AxisX specialisations of SendUp and SendDown.

// SendUpX ships each grid's top interior x-plane to the upper
// neighbour and fills each grid's lower ghost plane (x = -1) from the
// lower neighbour.  Grids must have x ghost width >= 1; only one plane
// is exchanged per grid.
func (c *Comm) SendUpX(gs ...*grid.G3) {
	c.SendUp(grid.AxisX, gs...)
}

// SendDownX ships each grid's bottom interior x-plane to the lower
// neighbour and fills each grid's upper ghost plane (x = NX) from the
// upper neighbour.
func (c *Comm) SendDownX(gs ...*grid.G3) {
	c.SendDown(grid.AxisX, gs...)
}
