package mesh

import (
	"testing"

	"repro/internal/grid"
)

func TestTopo2DGeometry(t *testing.T) {
	tp := NewTopo2D(10, 9, 2, 3)
	if tp.P() != 6 {
		t.Fatalf("P = %d", tp.P())
	}
	for r := 0; r < 6; r++ {
		rx, ry := tp.Coords(r)
		if tp.Rank(rx, ry) != r {
			t.Fatalf("Coords/Rank not inverse for %d", r)
		}
	}
	if tp.Rank(-1, 0) != -1 || tp.Rank(0, 3) != -1 || tp.Rank(2, 0) != -1 {
		t.Fatal("out-of-grid ranks should be -1")
	}
	// Blocks tile the global grid.
	seen := map[[2]int]bool{}
	for r := 0; r < 6; r++ {
		xr, yr := tp.Block(r)
		for i := xr.Lo; i < xr.Hi; i++ {
			for j := yr.Lo; j < yr.Hi; j++ {
				if seen[[2]int{i, j}] {
					t.Fatalf("point (%d,%d) owned twice", i, j)
				}
				seen[[2]int{i, j}] = true
				if tp.Owner(i, j) != r {
					t.Fatalf("Owner(%d,%d) = %d, want %d", i, j, tp.Owner(i, j), r)
				}
			}
		}
	}
	if len(seen) != 90 {
		t.Fatalf("covered %d points", len(seen))
	}
	if tp.Owner(-1, 0) != -1 || tp.Owner(0, 99) != -1 {
		t.Fatal("out-of-grid owner should be -1")
	}
}

// heat2D runs a 9-point smoothing sweep on a PX-by-PY process grid and
// returns the gathered global field.
func heat2D(t *testing.T, px, py, steps int, corners bool) *grid.G2 {
	t.Helper()
	const nx, ny = 12, 10
	tp := NewTopo2D(nx, ny, px, py)
	res, err := Run(tp.P(), Sim, DefaultOptions(), func(c *Comm) *grid.G2 {
		xr, yr := tp.Block(c.Rank())
		cur := tp.NewLocal(c.Rank(), 1)
		next := tp.NewLocal(c.Rank(), 1)
		cur.FillFunc(func(i, j int) float64 {
			return float64((xr.Lo+i)*3+(yr.Lo+j)*7) * 0.125
		})
		for s := 0; s < steps; s++ {
			c.ExchangeGhost2D(cur, tp, corners)
			for i := 0; i < cur.NX(); i++ {
				gi := xr.Lo + i
				for j := 0; j < cur.NY(); j++ {
					gj := yr.Lo + j
					at := func(di, dj int) float64 {
						ni, nj := gi+di, gj+dj
						if ni < 0 || ni >= nx || nj < 0 || nj >= ny {
							return 0
						}
						return cur.At(i+di, j+dj)
					}
					var v float64
					if corners {
						// 9-point stencil: needs the diagonal ghosts.
						v = (at(-1, -1) + at(-1, 0) + at(-1, 1) +
							at(0, -1) + at(0, 0) + at(0, 1) +
							at(1, -1) + at(1, 0) + at(1, 1)) / 9
					} else {
						// 5-point stencil: edges only.
						v = (at(-1, 0) + at(1, 0) + at(0, -1) + at(0, 1) + at(0, 0)) / 5
					}
					next.Set(i, j, v)
				}
			}
			cur, next = next, cur
		}
		return c.Gather2D(cur, tp, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	return res[0]
}

func TestHeat2DAgreesAcrossTopologies(t *testing.T) {
	for _, corners := range []bool{false, true} {
		ref := heat2D(t, 1, 1, 4, corners)
		for _, pq := range [][2]int{{1, 3}, {3, 1}, {2, 2}, {3, 2}, {2, 3}} {
			got := heat2D(t, pq[0], pq[1], 4, corners)
			if got == nil || !got.Equal(ref) {
				t.Fatalf("corners=%v topology %dx%d changed the result (max diff %g)",
					corners, pq[0], pq[1], got.MaxAbsDiff(ref))
			}
		}
	}
}

func TestHeat2DSimEqualsPar(t *testing.T) {
	const nx, ny = 12, 10
	tp := NewTopo2D(nx, ny, 2, 2)
	prog := func(c *Comm) *grid.G2 {
		cur := tp.NewLocal(c.Rank(), 1)
		xr, yr := tp.Block(c.Rank())
		cur.FillFunc(func(i, j int) float64 { return float64(xr.Lo+i) * float64(yr.Lo+j) })
		for s := 0; s < 3; s++ {
			c.ExchangeGhost2D(cur, tp, true)
			for i := 0; i < cur.NX(); i++ {
				for j := 0; j < cur.NY(); j++ {
					cur.Set(i, j, 0.5*cur.At(i, j)+0.125*(cur.At(i-1, j-1)+cur.At(i+1, j+1)))
				}
			}
		}
		return c.Gather2D(cur, tp, 0)
	}
	sim, err := Run(4, Sim, DefaultOptions(), prog)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(4, Par, DefaultOptions(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if !sim[0].Equal(par[0]) {
		t.Fatal("2-D topology Sim != Par")
	}
}

func TestExchangeGhost2DGhostWidth2(t *testing.T) {
	tp := NewTopo2D(12, 12, 2, 2)
	res, err := Run(4, Sim, DefaultOptions(), func(c *Comm) [4]float64 {
		xr, yr := tp.Block(c.Rank())
		g := tp.NewLocal(c.Rank(), 2)
		g.FillFunc(func(i, j int) float64 { return float64(100*(xr.Lo+i) + yr.Lo + j) })
		c.ExchangeGhost2D(g, tp, true)
		// Sample the outermost ghost ring (distance 2) in each direction.
		return [4]float64{g.At(-2, 0), g.At(g.NX()+1, 0), g.At(0, -2), g.At(0, g.NY()+1)}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Process 3 (coords 1,1) has up and left neighbours.
	xr, yr := tp.Block(3)
	if res[3][0] != float64(100*(xr.Lo-2)+yr.Lo) {
		t.Fatalf("width-2 up ghost = %v", res[3][0])
	}
	if res[3][2] != float64(100*xr.Lo+yr.Lo-2) {
		t.Fatalf("width-2 left ghost = %v", res[3][2])
	}
}

func TestTopo2DPanics(t *testing.T) {
	tp := NewTopo2D(8, 8, 2, 2)
	_, err := Run(2, Sim, DefaultOptions(), func(c *Comm) bool {
		defer func() { recover() }()
		g := grid.New2(4, 4, 1)
		c.ExchangeGhost2D(g, tp, false) // run has 2 procs, topo has 4
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(4, Sim, DefaultOptions(), func(c *Comm) bool {
		defer func() { recover() }()
		g := grid.New2(4, 4, 0) // no ghosts
		c.ExchangeGhost2D(g, tp, false)
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
}
