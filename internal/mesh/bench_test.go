package mesh

import (
	"testing"

	"repro/internal/grid"
)

func BenchmarkGhostExchange3D(b *testing.B) {
	const p = 4
	slabs := grid.SlabDecompose3(64, 64, 64, p, grid.AxisX)
	for _, mode := range []Mode{Sim, Par} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := Run(p, mode, DefaultOptions(), func(c *Comm) int {
					g := slabs[c.Rank()].NewLocal3(1)
					for s := 0; s < 8; s++ {
						c.ExchangeGhostPlanesX(g)
					}
					return 0
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAllReduceVecAlgorithms(b *testing.B) {
	vec := make([]float64, 1024)
	for _, alg := range []ReduceAlg{RecursiveDoubling, AllToOne} {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := Run(8, Sim, DefaultOptions(), func(c *Comm) float64 {
					return c.AllReduceVecAlg(vec, OpSum, alg)[0]
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRuntimeOverhead(b *testing.B) {
	// Cost of spinning up a run and doing one barrier.
	for _, mode := range []Mode{Sim, Par} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := Run(8, mode, DefaultOptions(), func(c *Comm) int {
					c.Barrier()
					return 0
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
