package mesh

import (
	"runtime/debug"
	"testing"

	"repro/internal/grid"
)

func TestBufferArenaSizeClasses(t *testing.T) {
	// Round trips for assorted sizes within the pooled range.
	for _, n := range []int{1, 63, 64, 65, 1000, 4096, 1 << 20} {
		b := getBuf(n)
		if len(b) != n {
			t.Fatalf("getBuf(%d) length %d", n, len(b))
		}
		putBuf(b)
		b2 := getBuf(n)
		if len(b2) != n {
			t.Fatalf("recycled getBuf(%d) length %d", n, len(b2))
		}
	}
	if getBuf(0) != nil {
		t.Fatal("getBuf(0) must be nil")
	}
	// Out-of-range and foreign slices are silently dropped.
	putBuf(nil)
	putBuf(make([]float64, 10))    // cap not a pooled power of two
	putBuf(make([]float64, 1<<23)) // beyond maxClassBits
	huge := getBuf(1<<22 + 1)      // beyond pooled range: plain allocation
	if len(huge) != 1<<22+1 {
		t.Fatalf("oversized getBuf length %d", len(huge))
	}
	putBuf(huge)
}

// TestSteadyStateExchangeAllocs enforces the pooled fast path's central
// claim: once warm, a full leapfrog-style exchange pair (SendUpX +
// SendDownX of two grids) allocates zero heap objects — the pack
// buffers recycle through the arena, the channel queues reuse their
// backing arrays, and the scheduler's bookkeeping is allocation-free.
// GC is disabled for the measurement so the pools cannot be cleared
// mid-test.
func TestSteadyStateExchangeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts only hold in normal builds")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const p = 2
	const warm = 8
	const runs = 50
	slabs := grid.SlabDecompose3(8, 4, 4, p, grid.AxisX)
	for _, mode := range bothModes {
		opt := Options{Combine: true} // no tally, no obs: the bare message path
		res, err := Run(p, mode, opt, func(c *Comm) float64 {
			sl := slabs[c.Rank()]
			a := sl.NewLocal3(1)
			b := sl.NewLocal3(1)
			step := func() {
				c.SendUpX(a, b)
				c.SendDownX(a, b)
			}
			for i := 0; i < warm; i++ {
				step()
			}
			if c.Rank() == 0 {
				return testing.AllocsPerRun(runs, step)
			}
			// AllocsPerRun executes its function runs+1 times (one
			// warm-up call plus the measured runs); the peer must match
			// exactly or the exchange deadlocks.
			for i := 0; i < runs+1; i++ {
				step()
			}
			return 0
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res[0] != 0 {
			t.Errorf("%v: steady-state exchange allocates %v objects per step, want 0", mode, res[0])
		}
	}
}

// TestPooledBufferPatternIntegrity drives many exchange rounds whose
// payloads change every round, through heavy buffer recycling, and
// checks each received ghost against the value its neighbour packed —
// proof that no buffer is recycled while its contents are still
// needed.  Run under -race (make race) this also exercises the
// ownership-transfer discipline across the Par runtime's goroutines.
func TestPooledBufferPatternIntegrity(t *testing.T) {
	const p = 4
	const rounds = 60
	slabs := grid.SlabDecompose3(16, 6, 5, p, grid.AxisX)
	for _, mode := range bothModes {
		res, err := Run(p, mode, DefaultOptions(), func(c *Comm) int {
			r := c.Rank()
			sl := slabs[r]
			a := sl.NewLocal3(1)
			b := sl.NewLocal3(1)
			bad := 0
			for n := 0; n < rounds; n++ {
				// Distinct per-rank, per-round, per-grid payloads.
				fa := float64(1000*r + n)
				fb := float64(1000*r+n) + 0.5
				a.Fill(fa)
				b.Fill(fb)
				c.SendUpX(a, b)
				c.SendDownX(a, b)
				c.ExchangeGhostPlanesMulti(grid.AxisX, a, b)
				if r > 0 {
					want := float64(1000*(r-1) + n)
					if a.At(-1, 0, 0) != want || b.At(-1, 0, 0) != want+0.5 {
						bad++
					}
				}
				if r < p-1 {
					want := float64(1000*(r+1) + n)
					if a.At(a.NX(), 0, 0) != want || b.At(b.NX(), 0, 0) != want+0.5 {
						bad++
					}
				}
				// A reduction interleaved with the exchanges recycles
				// collective payloads through the same arena.
				sum := c.AllReduce(float64(r), OpSum)
				if sum != float64(p*(p-1)/2) {
					bad++
				}
			}
			return bad
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		for r, bad := range res {
			if bad != 0 {
				t.Fatalf("%v rank %d: %d corrupted ghost/reduction values", mode, r, bad)
			}
		}
	}
}
