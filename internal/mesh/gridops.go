package mesh

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/obs"
)

// The operations in this file assume a one-dimensional block ("slab")
// distribution along the x axis: process r owns a contiguous range of
// global x indices, with rank r-1 holding the slab below and r+1 the
// slab above.  This is the distribution the paper's FDTD experiments
// use; the archetype generalises to 2-D and 3-D process grids, but the
// communication structure per axis is identical to what is here.

// ExchangeGhostRows refreshes the ghost rows of a 2-D local section
// split along x: each process sends its top and bottom interior rows to
// its neighbours and receives their boundary rows into its ghost rows.
// All sends are performed before any receives, the ordering that
// guarantees no receive from an empty channel in the simulated-parallel
// execution.
func (c *Comm) ExchangeGhostRows(g *grid.G2) {
	p, r := c.P(), c.Rank()
	w := g.Ghost()
	if w == 0 {
		panic("mesh: ExchangeGhostRows requires a ghost boundary")
	}
	nx := g.NX()
	if 2*w > nx {
		panic(fmt.Sprintf("mesh: ghost width %d too large for %d local rows", w, nx))
	}
	c.beginPhase(obs.PhaseExchange, "ghost-exchange")
	ny := g.NY()
	// Sends first.
	if r > 0 { // to lower neighbour: my lowest w interior rows
		c.sendPlanes(r-1, w, ny, func(k int, dst []float64) { copy(dst, g.Row(k)) })
	}
	if r < p-1 { // to upper neighbour: my highest w interior rows
		c.sendPlanes(r+1, w, ny, func(k int, dst []float64) { copy(dst, g.Row(nx-w+k)) })
	}
	c.flush()
	// Then receives.
	if r > 0 { // from lower neighbour into ghost rows -w..-1
		c.recvPlanes(r-1, w, func(k int, data []float64) {
			copyRow2(g, -w+k, data)
		})
	}
	if r < p-1 { // from upper neighbour into ghost rows nx..nx+w-1
		c.recvPlanes(r+1, w, func(k int, data []float64) {
			copyRow2(g, nx+k, data)
		})
	}
	c.endPhase("ghost-exchange")
}

func copyRow2(g *grid.G2, i int, data []float64) {
	if len(data) != g.NY() {
		panic(fmt.Sprintf("mesh: ghost row length %d, want %d", len(data), g.NY()))
	}
	g.UnpackRow(i, 0, data)
}

// ExchangeGhostPlanesX refreshes the x-ghost planes of a 3-D local
// section split along x, exchanging full y-z planes with the lower and
// upper neighbours.  It is the AxisX specialisation of
// ExchangeGhostPlanes.
func (c *Comm) ExchangeGhostPlanesX(g *grid.G3) {
	c.ExchangeGhostPlanes(g, grid.AxisX)
}

// sendPlanes transmits w equal-sized planes to a neighbour: as a single
// combined message when Options.Combine is set, otherwise as w
// individual messages (the message-combining ablation).  Each plane is
// packed by the callback directly into a pooled message buffer of
// length size — no intermediate copy — and the buffer is handed to the
// channel by ownership transfer (sendOwned).
func (c *Comm) sendPlanes(to, w, size int, pack func(k int, dst []float64)) {
	if c.opt.Combine {
		buf := getBuf(w * size)
		for k := 0; k < w; k++ {
			pack(k, buf[k*size:(k+1)*size])
		}
		c.sendOwned(to, buf)
		return
	}
	for k := 0; k < w; k++ {
		buf := getBuf(size)
		pack(k, buf)
		c.sendOwned(to, buf)
	}
}

// recvPlanes receives w planes from a neighbour, mirroring sendPlanes,
// and returns each consumed payload to the buffer arena.  The slices
// passed to deliver are only valid for the duration of the call.
func (c *Comm) recvPlanes(from, w int, deliver func(k int, data []float64)) {
	if c.opt.Combine {
		buf := c.recv(from)
		if w == 0 {
			putBuf(buf)
			return
		}
		if len(buf)%w != 0 {
			panic(fmt.Sprintf("mesh: combined message length %d not divisible by %d planes", len(buf), w))
		}
		sz := len(buf) / w
		for k := 0; k < w; k++ {
			deliver(k, buf[k*sz:(k+1)*sz])
		}
		putBuf(buf)
		return
	}
	for k := 0; k < w; k++ {
		buf := c.recv(from)
		deliver(k, buf)
		putBuf(buf)
	}
}

// GatherX collects the distributed slabs of a 3-D grid onto the root
// process (the archetype's grid-to-host redistribution for file
// output).  It returns the assembled global grid on root and nil on
// every other process.  slabs must be the decomposition used to build
// the local sections.
func (c *Comm) GatherX(local *grid.G3, slabs []grid.Slab, root int) *grid.G3 {
	p, r := c.P(), c.Rank()
	if len(slabs) != p {
		panic(fmt.Sprintf("mesh: %d slabs for %d processes", len(slabs), p))
	}
	c.beginPhase(obs.PhaseIO, "gather")
	defer c.endPhase("gather")
	if r != root {
		c.sendPlanes(root, local.NX(), local.PlaneSize(grid.AxisX),
			func(k int, dst []float64) { local.PackPlaneX(k, dst) })
		c.flush()
		return nil
	}
	s := slabs[r]
	global := grid.New3(s.NX, s.NY, s.NZ, 0)
	// Own slab directly, no serialisation.
	for k := 0; k < local.NX(); k++ {
		global.CopyPlaneX(s.ToGlobal(k), local, k)
	}
	// Remote slabs in rank order.
	for src := 0; src < p; src++ {
		if src == root {
			continue
		}
		sl := slabs[src]
		c.recvPlanes(src, sl.LocalNX(), func(k int, data []float64) {
			global.UnpackPlaneX(sl.ToGlobal(k), data)
		})
	}
	return global
}

// ScatterX distributes a global 3-D grid held by root into per-process
// local sections with the given ghost width along x (the archetype's
// host-to-grid redistribution for file input).  Every process returns
// its local section; global is only read on root.
func (c *Comm) ScatterX(global *grid.G3, slabs []grid.Slab, root, ghost int) *grid.G3 {
	p, r := c.P(), c.Rank()
	if len(slabs) != p {
		panic(fmt.Sprintf("mesh: %d slabs for %d processes", len(slabs), p))
	}
	c.beginPhase(obs.PhaseIO, "scatter")
	defer c.endPhase("scatter")
	if r == root {
		if global == nil {
			panic("mesh: ScatterX requires the global grid on root")
		}
		size := global.PlaneSize(grid.AxisX)
		for dst := 0; dst < p; dst++ {
			if dst == root {
				continue
			}
			sl := slabs[dst]
			c.sendPlanes(dst, sl.LocalNX(), size, func(k int, buf []float64) {
				global.PackPlaneX(sl.ToGlobal(k), buf)
			})
		}
		c.flush()
		sl := slabs[r]
		local := sl.NewLocal3(ghost)
		for k := 0; k < sl.LocalNX(); k++ {
			local.CopyPlaneX(k, global, sl.ToGlobal(k))
		}
		return local
	}
	sl := slabs[r]
	local := sl.NewLocal3(ghost)
	c.recvPlanes(root, sl.LocalNX(), func(k int, data []float64) {
		local.UnpackPlaneX(k, data)
	})
	return local
}

// GatherRows collects a 2-D grid distributed by rows onto root,
// returning the global grid on root and nil elsewhere.  ranges is the
// x decomposition (grid.Decompose of the global NX).
func (c *Comm) GatherRows(local *grid.G2, ranges []grid.Range, globalNX int, root int) *grid.G2 {
	p, r := c.P(), c.Rank()
	if len(ranges) != p {
		panic(fmt.Sprintf("mesh: %d ranges for %d processes", len(ranges), p))
	}
	c.beginPhase(obs.PhaseIO, "gather")
	defer c.endPhase("gather")
	if r != root {
		c.sendPlanes(root, local.NX(), local.NY(),
			func(k int, dst []float64) { copy(dst, local.Row(k)) })
		c.flush()
		return nil
	}
	global := grid.New2(globalNX, local.NY(), 0)
	for k := 0; k < local.NX(); k++ {
		global.UnpackRow(ranges[r].Lo+k, 0, local.Row(k))
	}
	for src := 0; src < p; src++ {
		if src == root {
			continue
		}
		rg := ranges[src]
		c.recvPlanes(src, rg.Len(), func(k int, data []float64) {
			copyRow2(global, rg.Lo+k, data)
		})
	}
	return global
}

// ScatterRows distributes a global 2-D grid held by root into local
// row-blocks with the given ghost width.  Every process returns its
// local section.
func (c *Comm) ScatterRows(global *grid.G2, ranges []grid.Range, ghost int, root int) *grid.G2 {
	p, r := c.P(), c.Rank()
	if len(ranges) != p {
		panic(fmt.Sprintf("mesh: %d ranges for %d processes", len(ranges), p))
	}
	c.beginPhase(obs.PhaseIO, "scatter")
	defer c.endPhase("scatter")
	if r == root {
		if global == nil {
			panic("mesh: ScatterRows requires the global grid on root")
		}
		ny := global.NY()
		for dst := 0; dst < p; dst++ {
			if dst == root {
				continue
			}
			rg := ranges[dst]
			c.sendPlanes(dst, rg.Len(), ny, func(k int, dst []float64) {
				copy(dst, global.Row(rg.Lo+k))
			})
		}
		c.flush()
		rg := ranges[r]
		local := grid.New2(rg.Len(), ny, ghost)
		for k := 0; k < rg.Len(); k++ {
			local.UnpackRow(k, 0, global.Row(rg.Lo+k))
		}
		return local
	}
	rg := ranges[r]
	// Non-root processes learn NY from the first received row.
	local := (*grid.G2)(nil)
	c.recvPlanes(root, rg.Len(), func(k int, data []float64) {
		if local == nil {
			local = grid.New2(rg.Len(), len(data), ghost)
		}
		copyRow2(local, k, data)
	})
	return local
}
