// Command archexp regenerates the paper's evaluation: every table and
// figure, the correctness findings, and this reproduction's ablations.
//
// Usage:
//
//	archexp                  run every experiment at full size
//	archexp -exp table1      run one experiment
//	archexp -quick           use reduced workloads (seconds, not minutes)
//
// Experiments: correctness, farfield, determinacy, table1, figure2,
// figure1, effort, ablations, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/fdtd"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/mesh"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (correctness|farfield|determinacy|table1|figure2|rcs|figure1|effort|ablations|all)")
	quick := flag.Bool("quick", false, "use reduced workloads")
	flag.Parse()

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("\n----- %s -----\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "archexp: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	specC := fdtd.SpecTable1()
	specA := fdtd.SpecFigure2()
	if *quick {
		specC.Steps = 32
		specA.Steps = 16
	}

	run("correctness", func() error {
		small := fdtd.SpecSmall()
		smallA := fdtd.SpecSmallA()
		for _, s := range []fdtd.Spec{smallA, small} {
			rep, err := harness.RunCorrectness(s, 4, 5)
			if err != nil {
				return err
			}
			fmt.Print(rep)
		}
		return nil
	})

	run("farfield", func() error {
		spec := specC
		if *quick {
			spec = fdtd.SpecSmall()
		}
		a, err := harness.RunFarFieldAnalysis(spec, 4)
		if err != nil {
			return err
		}
		fmt.Print(a)
		return nil
	})

	run("determinacy", func() error {
		rep, err := harness.RunDeterminacy(fdtd.SpecSmall(), 3, 3)
		if err != nil {
			return err
		}
		fmt.Print(rep)
		return nil
	})

	run("table1", func() error {
		tab, err := harness.RunSpeedup(harness.SpeedupConfig{
			Spec:  specC,
			Ps:    []int{2, 4, 8},
			Model: machine.SunEthernet(),
			Opt:   fdtd.DefaultOptions(),
			Title: fmt.Sprintf("Table 1: electromagnetics code (Version C), 33x33x33 grid, %d steps", specC.Steps),
		})
		if err != nil {
			return err
		}
		fmt.Print(tab.Format())
		if msg := tab.CheckShape(); msg != "" {
			fmt.Printf("SHAPE WARNING: %s\n", msg)
		}
		return nil
	})

	run("figure2", func() error {
		tab, err := harness.RunSpeedup(harness.SpeedupConfig{
			Spec:  specA,
			Ps:    []int{2, 4, 8, 16},
			Model: machine.IBMSP(),
			Opt:   fdtd.DefaultOptions(),
			Title: fmt.Sprintf("Figure 2: electromagnetics code (Version A), 66x66x66 grid, %d steps", specA.Steps),
		})
		if err != nil {
			return err
		}
		fmt.Print(tab.Format())
		fmt.Println()
		fmt.Print(harness.FigurePlots(tab))
		if msg := tab.CheckShape(); msg != "" {
			fmt.Printf("SHAPE WARNING: %s\n", msg)
		}
		return nil
	})

	run("rcs", func() error {
		// The application's motivating output (§4.1): radar cross
		// section derived from the far-field potentials.
		spec := specC
		spec.Source.Shape = fdtd.PulseRicker
		res, err := fdtd.RunArchetype(spec, 4, mesh.Sim, fdtd.DefaultOptions())
		if err != nil {
			return err
		}
		lo, hi := spec.SourceBandwidth()
		var freqs, sigmas []float64
		for i := 0; i < 16; i++ {
			f := lo + (hi-lo)*float64(i)/15
			pts, err := res.RCS([]float64{f})
			if err != nil {
				continue
			}
			freqs = append(freqs, f)
			sigmas = append(sigmas, pts[0].Sigma)
		}
		fmt.Printf("RCS sweep, observation direction %v (%d frequencies)\n",
			spec.FarField.Dir, len(freqs))
		plot := harness.Plot{
			Title:  "normalised radar cross section vs frequency",
			XLabel: "frequency (c/cell)", YLabel: "sigma (norm.)",
			Series: []harness.Series{{Name: "RCS", Marker: '*', X: freqs, Y: sigmas}},
		}
		fmt.Print(plot.Render())
		return nil
	})

	run("figure1", func() error {
		rep, err := harness.RunFigure1()
		if err != nil {
			return err
		}
		fmt.Print(rep)
		return nil
	})

	run("effort", func() error {
		for _, v := range []string{"A", "C"} {
			fmt.Print(harness.RunEffort(v))
		}
		return nil
	})

	run("ablations", func() error {
		spec := specC
		if *quick {
			spec.Steps = 16
		}
		model := machine.SunEthernet()
		type variant struct {
			name string
			opt  fdtd.Options
		}
		base := fdtd.DefaultOptions()
		noCombine := base
		noCombine.Mesh.Combine = false
		allToOne := base
		allToOne.Mesh.ReduceAlg = mesh.AllToOne
		concIO := base
		concIO.HostIO = false
		variants := []variant{
			{"baseline (combine, recursive-doubling, host I/O)", base},
			{"no message combining", noCombine},
			{"all-to-one reduction", allToOne},
			{"concurrent I/O (no host scatter)", concIO},
		}
		fmt.Printf("%-48s %10s %10s %12s %12s %12s\n",
			"variant", "msgs", "MB", "compute (s)", "comm (s)", "total (s)")
		report := func(name string, ta *machine.Tally) {
			bd := model.Breakdown(ta)
			fmt.Printf("%-48s %10d %10.2f %12.3f %12.3f %12.3f\n", name,
				ta.TotalMessages(), float64(ta.TotalBytes())/1e6,
				bd.Compute, bd.Comm, bd.Compute+bd.Comm)
		}
		for _, v := range variants {
			opt := v.opt
			opt.Mesh.Tally = machine.NewTally(8)
			if _, err := fdtd.RunArchetype(spec, 8, mesh.Sim, opt); err != nil {
				return err
			}
			report(v.name, opt.Mesh.Tally)
		}
		// Decomposition-shape ablation at the same process count.
		opt2d := base
		opt2d.Mesh.Tally = machine.NewTally(8)
		if _, err := fdtd.RunArchetype2D(spec, 4, 2, mesh.Sim, opt2d); err != nil {
			return err
		}
		report("2-D decomposition (4x2 blocks)", opt2d.Mesh.Tally)
		return nil
	})

	if *exp != "all" && !strings.Contains("correctness farfield determinacy table1 figure2 rcs figure1 effort ablations", *exp) {
		fmt.Fprintf(os.Stderr, "archexp: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
