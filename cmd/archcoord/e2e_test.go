package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fdtd"
	"repro/internal/mesh"
	"repro/internal/serve"
)

func buildBinary(t *testing.T, name, pkg string) string {
	t.Helper()
	exe := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", exe, pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return exe
}

func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("%s never became healthy", base)
}

// smokeSpec mirrors the load generator's population: a fast Version A
// spec distinguished by source delay.
func smokeSpec(i int) fdtd.Spec {
	s := fdtd.SpecSmallA()
	s.Source.Delay = 5 + float64(i)
	return s
}

// TestClusterSmoke boots the real archcoord binary over two real
// archserve nodes, kills one node mid-burst, and verifies that every
// request completes bitwise-identically (matching a mesh.Sim oracle),
// that /v1/nodes reports the death, and that SIGTERM stops the
// coordinator cleanly.  `make cluster-smoke` runs exactly this test.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test spawns real processes")
	}
	coordExe := buildBinary(t, "archcoord", ".")
	serveExe := buildBinary(t, "archserve", "repro/cmd/archserve")

	// Two nodes.
	type nodeProc struct {
		name string
		addr string
		cmd  *exec.Cmd
		logs *strings.Builder
	}
	var nodes []*nodeProc
	for _, name := range []string{"n0", "n1"} {
		addr := freePort(t)
		cmd := exec.Command(serveExe, "-addr", addr, "-p", "2", "-workers", "2", "-queue", "32")
		logs := &strings.Builder{}
		cmd.Stdout = logs
		cmd.Stderr = logs
		if err := cmd.Start(); err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
		n := &nodeProc{name: name, addr: addr, cmd: cmd, logs: logs}
		nodes = append(nodes, n)
		t.Cleanup(func() { n.cmd.Process.Kill(); n.cmd.Wait() })
	}

	// The coordinator binary, probing fast so the smoke stays quick.
	coordAddr := freePort(t)
	coordCmd := exec.Command(coordExe,
		"-addr", coordAddr,
		"-nodes", fmt.Sprintf("n0=http://%s,n1=http://%s", nodes[0].addr, nodes[1].addr),
		"-probe-interval", "25ms", "-dead-after", "3",
		"-max-attempts", "9", "-base-backoff", "5ms", "-max-backoff", "50ms")
	coordLogs := &strings.Builder{}
	coordCmd.Stdout = coordLogs
	coordCmd.Stderr = coordLogs
	if err := coordCmd.Start(); err != nil {
		t.Fatalf("start archcoord: %v", err)
	}
	t.Cleanup(func() { coordCmd.Process.Kill(); coordCmd.Wait() })

	front := "http://" + coordAddr
	for _, n := range nodes {
		waitReady(t, "http://"+n.addr)
	}
	waitReady(t, front)

	// The test computes the same ring the coordinator does (same code,
	// same names), so it knows which node to kill to hit real arcs.
	ring, err := cluster.NewRing([]string{"n0", "n1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const victim = "n1"
	specs := make([]fdtd.Spec, 4)
	for i := range specs {
		specs[i] = smokeSpec(i)
	}

	type outcome struct {
		idx int
		jr  serve.JobResult
		err error
	}
	post := func(idx int) outcome {
		body, _ := json.Marshal(serve.JobRequest{Spec: &specs[idx]})
		resp, err := http.Post(front+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return outcome{idx: idx, err: err}
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			return outcome{idx: idx, err: fmt.Errorf("status %d: %s", resp.StatusCode, raw)}
		}
		var cr struct {
			Result serve.JobResult `json:"result"`
		}
		if err := json.Unmarshal(raw, &cr); err != nil {
			return outcome{idx: idx, err: err}
		}
		return outcome{idx: idx, jr: cr.Result}
	}

	const total = 20
	results := make(chan outcome, 2*total)
	firstDone := make(chan struct{}, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := post(i % len(specs))
			firstDone <- struct{}{}
			results <- o
		}(i)
	}
	// Kill the victim node mid-burst, then fire a second wave into the
	// stale routing so failover provably runs.
	<-firstDone
	for _, n := range nodes {
		if n.name == victim {
			n.cmd.Process.Kill()
		}
	}
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results <- post(i)
		}(i)
	}
	wg.Wait()
	close(results)

	bySpec := map[int][]serve.JobResult{}
	for o := range results {
		if o.err != nil {
			t.Fatalf("request lost during node kill: %v", o.err)
		}
		bySpec[o.idx] = append(bySpec[o.idx], o.jr)
	}
	for idx, rs := range bySpec {
		for _, r := range rs[1:] {
			if !rs[0].BitwiseEqual(&r) {
				t.Fatalf("spec %d: responses disagree bitwise", idx)
			}
		}
	}
	// One oracle recomputation pins the cluster to mesh.Sim; the ring
	// guarantees at least one spec's primary was the victim for 4
	// specs over 2 nodes unless the hash conspires — find one to prove
	// the killed arc was exercised.
	sawVictimArc := false
	for i := range specs {
		if ring.Primary(specs[i].Fingerprint()) == victim {
			sawVictimArc = true
		}
	}
	if !sawVictimArc {
		t.Log("note: no smoke spec mapped to the victim arc; failover exercised only via stale-route errors")
	}
	fresh, err := fdtd.RunArchetype(specs[0], 2, mesh.Sim, fdtd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := bySpec[0][0].FieldHash; got != serve.ResultFieldHash(fresh) {
		t.Fatalf("cluster FieldHash %s != mesh.Sim oracle %s", got, serve.ResultFieldHash(fresh))
	}

	// The coordinator noticed the death.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(front + "/v1/nodes")
		if err != nil {
			t.Fatal(err)
		}
		var rows []cluster.NodeStatus
		err = json.NewDecoder(resp.Body).Decode(&rows)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		dead := false
		for _, r := range rows {
			if r.Name == victim && r.State == "dead" {
				dead = true
			}
		}
		if dead {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim never reported dead: %+v", rows)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// SIGTERM stops the coordinator cleanly (exit 0).
	if err := coordCmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- coordCmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("archcoord exited %v after SIGTERM\n%s", err, coordLogs.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("archcoord did not stop within 30s\n%s", coordLogs.String())
	}
	if !strings.Contains(coordLogs.String(), "stopped cleanly") {
		t.Fatalf("expected a clean stop, logs:\n%s", coordLogs.String())
	}

	// The surviving node still drains cleanly.
	for _, n := range nodes {
		if n.name == victim {
			continue
		}
		n.cmd.Process.Signal(syscall.SIGTERM)
		nodeDone := make(chan error, 1)
		go func() { nodeDone <- n.cmd.Wait() }()
		select {
		case err := <-nodeDone:
			if err != nil {
				t.Fatalf("node %s exited %v after SIGTERM\n%s", n.name, err, n.logs.String())
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("node %s never drained", n.name)
		}
	}
}
