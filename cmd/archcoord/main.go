// Command archcoord fronts a set of archserve nodes as one service: it
// shards each job to a stable node by spec fingerprint (consistent
// hashing, so node-side result caches shard for free), health-checks
// the roster, retries with backoff, and fails over to ring replicas
// when a node dies — answering degraded rather than failing while any
// node lives.  Sound by Theorem 1: any node serves any job bitwise
// identically.
//
//	archcoord -addr :8090 -nodes n0=http://127.0.0.1:8081,n1=http://127.0.0.1:8082
//
// Endpoints: POST /v1/jobs (single-node request shape, wrapped
// response with node/degraded provenance), GET /v1/stats, GET
// /v1/nodes, GET /healthz.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/client"
)

// parseNodes reads the -nodes flag: comma-separated name=url pairs.
func parseNodes(s string) ([]cluster.Node, error) {
	if s == "" {
		return nil, fmt.Errorf("-nodes is required (name=url,name=url,...)")
	}
	var out []cluster.Node
	for _, part := range strings.Split(s, ",") {
		name, url, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad node %q (want name=url)", part)
		}
		out = append(out, cluster.Node{Name: name, URL: strings.TrimSuffix(url, "/")})
	}
	return out, nil
}

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:8090", "HTTP listen address")
		nodesFlag     = flag.String("nodes", "", "cluster roster: name=url,name=url,...")
		probeInterval = flag.Duration("probe-interval", 500*time.Millisecond, "health-check period")
		probeTimeout  = flag.Duration("probe-timeout", 2*time.Second, "health-check round-trip bound")
		suspectAfter  = flag.Int("suspect-after", 1, "consecutive probe failures before a node is suspect")
		deadAfter     = flag.Int("dead-after", 3, "consecutive probe failures before a node is dead")
		rejoinAfter   = flag.Int("rejoin-after", 2, "consecutive probe successes before a dead node rejoins")
		vnodes        = flag.Int("vnodes", 0, "virtual nodes per node on the hash ring (0 = default)")
		maxAttempts   = flag.Int("max-attempts", 4, "total forwarding attempts per job")
		attemptTO     = flag.Duration("attempt-timeout", 60*time.Second, "per-attempt deadline")
		baseBackoff   = flag.Duration("base-backoff", 25*time.Millisecond, "first full-cycle backoff")
		maxBackoff    = flag.Duration("max-backoff", time.Second, "backoff ceiling")
		maxRetryAfter = flag.Duration("max-retry-after", 2*time.Second, "cap on honoured Retry-After hints")
		hotDisabled   = flag.Bool("hot-disabled", false, "disable the hot-shard layer (replication, p2c routing, warm handoff)")
		hotReplicas   = flag.Int("hot-replicas", 2, "ring successors a hot cache entry is replicated to")
		hotTopK       = flag.Int("hot-top-k", 16, "space-saving counters tracking candidate hot fingerprints")
		hotFraction   = flag.Float64("hot-fraction", 0.10, "traffic share a fingerprint must exceed to count as hot")
		hotMinTotal   = flag.Int64("hot-min-total", 32, "observations required before any fingerprint can be promoted")
	)
	flag.Parse()

	nodes, err := parseNodes(*nodesFlag)
	if err != nil {
		log.Fatalf("archcoord: %v", err)
	}
	coord, err := cluster.New(cluster.Config{
		Nodes: nodes,
		Member: cluster.MemberConfig{
			ProbeInterval: *probeInterval,
			ProbeTimeout:  *probeTimeout,
			SuspectAfter:  *suspectAfter,
			DeadAfter:     *deadAfter,
			RejoinAfter:   *rejoinAfter,
			VNodes:        *vnodes,
		},
		Client: client.Policy{
			MaxAttempts:       *maxAttempts,
			PerAttemptTimeout: *attemptTO,
			BaseBackoff:       *baseBackoff,
			MaxBackoff:        *maxBackoff,
			MaxRetryAfter:     *maxRetryAfter,
		},
		Hot: cluster.HotConfig{
			Disabled:    *hotDisabled,
			Replicas:    *hotReplicas,
			TopK:        *hotTopK,
			HotFraction: *hotFraction,
			MinTotal:    *hotMinTotal,
		},
		Seed: time.Now().UnixNano(),
	})
	if err != nil {
		log.Fatalf("archcoord: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("archcoord: listen %s: %v", *addr, err)
	}
	httpSrv := &http.Server{Handler: coord.Handler()}
	log.Printf("archcoord: coordinating %d nodes on http://%s (probe=%v suspect=%d dead=%d)",
		len(nodes), ln.Addr(), *probeInterval, *suspectAfter, *deadAfter)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("archcoord: serve: %v", err)
	case s := <-sig:
		log.Printf("archcoord: %v: shutting down", s)
	}

	// The coordinator holds no job state (Theorem 1 makes the nodes'
	// answers interchangeable, so there is nothing to hand off): just
	// stop accepting, finish in-flight forwards, stop probing.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx)
	coord.Close()
	log.Printf("archcoord: stopped cleanly")
}
