package main

import (
	"fmt"
	"time"

	"repro/internal/fdtd"
	"repro/internal/machine"
	"repro/internal/obs"
)

// Roofline probe sizing: three 8M-element float64 arrays (192 MB
// total) dwarf any last-level cache, and the best of five passes is
// the usual STREAM discipline.  Each kernel point is timed for at
// least 150 ms, enough for thousands of bench-grid steps.
const (
	streamElems   = 8 << 20
	streamIters   = 5
	kernelMinTime = 150 * time.Millisecond
)

// runRoofline measures the achieved cells/sec of both kernel variants
// (the fused pencil kernels and the per-cell reference kernels) at
// each tile-worker count, against the memory-bandwidth bound implied
// by a stream-triad probe: bound = measured B/s / KernelBytesPerCell.
// It prints the achieved-vs-bound table and returns the bench entries
// (roofline/* and kernel/*/cells_per_sec) for -bench-out.
func runRoofline(spec fdtd.Spec, workers []int, quiet bool) []obs.BenchEntry {
	if !quiet {
		fmt.Printf("roofline: grid %dx%dx%d, stream probe %d elements x3...\n",
			spec.NX, spec.NY, spec.NZ, streamElems)
	}
	probe := machine.StreamTriad(streamElems, streamIters)
	bound := probe.BytesPerSec / fdtd.KernelBytesPerCell
	if !quiet {
		fmt.Printf("%s\nmemory-bound ceiling: %.1f Mcells/s (%d B/cell-step)\n",
			probe, bound/1e6, fdtd.KernelBytesPerCell)
	}
	entries := []obs.BenchEntry{
		{Name: "roofline/stream_bw", Value: probe.BytesPerSec, Unit: "B/s"},
		{Name: "roofline/bound", Value: bound, Unit: "cells/s"},
	}
	for _, w := range workers {
		for _, v := range []fdtd.KernelVariant{fdtd.KernelPencil, fdtd.KernelReference} {
			r := fdtd.MeasureKernelRate(spec, v, w, kernelMinTime)
			frac := r.CellsPerSec / bound
			entries = append(entries,
				obs.BenchEntry{
					Name:  fmt.Sprintf("kernel/%s/W=%d/cells_per_sec", v, w),
					Value: r.CellsPerSec, Unit: "cells/s",
				},
				obs.BenchEntry{
					Name:  fmt.Sprintf("roofline/%s/W=%d/of_bound", v, w),
					Value: frac, Unit: "x",
				})
			if !quiet {
				fmt.Printf("  %s  (%4.1f%% of bound, %d steps)\n", r, 100*frac, r.Steps)
			}
		}
	}
	return entries
}
