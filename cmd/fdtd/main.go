// Command fdtd runs the electromagnetics application directly.
//
// Usage:
//
//	fdtd -version C -build seq              original sequential program
//	fdtd -version A -build ssp -p 4         simulated-parallel, 4 processes
//	fdtd -version C -build par -p 8         message-passing parallel
//	fdtd -nx 48 -ny 48 -nz 48 -steps 256    custom grid
//
// It prints a run summary, the probe series extrema, and (Version C)
// the peak far-field potentials, plus the work/message profile when a
// parallel build is selected.
//
// Fault tolerance (par build): -checkpoint-every N saves a hardened
// checkpoint every N steps under crash recovery, -resume restarts from
// the checkpoint file, and -inject-crash rank@step kills a rank
// mid-run to demonstrate recovery:
//
//	fdtd -build par -p 4 -checkpoint-every 50 -checkpoint run.ckp \
//	     -inject-crash 1@120
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/fault"
	"repro/internal/fdtd"
	"repro/internal/gridio"
	"repro/internal/machine"
	"repro/internal/mesh"
)

// parseCrash parses "rank@step" for -inject-crash.
func parseCrash(s string) (*fault.Injector, error) {
	var rank, step int
	if _, err := fmt.Sscanf(s, "%d@%d", &rank, &step); err != nil {
		return nil, fmt.Errorf("want rank@step, got %q", s)
	}
	if rank < 0 || step < 0 {
		return nil, fmt.Errorf("rank and step must be non-negative in %q", s)
	}
	return fault.NewCrash(rank, step), nil
}

func main() {
	version := flag.String("version", "C", "application version: A (near field) or C (near + far field)")
	build := flag.String("build", "seq", "build to run: seq | ssp | par")
	p := flag.Int("p", 4, "process count for ssp/par builds (x-axis split)")
	py := flag.Int("py", 1, "y-axis process count (>1 selects the 2-D block decomposition)")
	nx := flag.Int("nx", 33, "grid extent x")
	ny := flag.Int("ny", 33, "grid extent y")
	nz := flag.Int("nz", 33, "grid extent z")
	steps := flag.Int("steps", 128, "time steps")
	compensated := flag.Bool("compensated", false, "use the compensated (fixed) far field")
	boundary := flag.String("boundary", "pec", "outer boundary: pec | mur1")
	dump := flag.String("dump", "", "write the final Ez field to this file (gridio format)")
	ckEvery := flag.Int("checkpoint-every", 0, "par build: checkpoint every N steps under crash recovery (0 = off)")
	ckPath := flag.String("checkpoint", "fdtd.ckp", "checkpoint file path (with -checkpoint-every or -resume)")
	resume := flag.Bool("resume", false, "par build: resume from the checkpoint file (implies recovery)")
	injectCrash := flag.String("inject-crash", "", "par build: crash rank@step once, to be absorbed by recovery")
	flag.Parse()

	spec := fdtd.SpecTable1()
	spec.NX, spec.NY, spec.NZ, spec.Steps = *nx, *ny, *nz, *steps
	spec.Source.I, spec.Source.J, spec.Source.K = *nx/2, *ny/2, *nz/2
	spec.Probe = [3]int{*nx/2 + *nx/8, *ny / 2, *nz / 2}
	if *version == "A" {
		spec.FarField = nil
	}
	switch *boundary {
	case "pec":
		spec.Boundary = fdtd.BoundaryPEC
	case "mur1":
		spec.Boundary = fdtd.BoundaryMur1
	default:
		fmt.Fprintf(os.Stderr, "fdtd: unknown boundary %q\n", *boundary)
		os.Exit(2)
	}
	if err := spec.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "fdtd: %v\n", err)
		os.Exit(2)
	}

	opt := fdtd.DefaultOptions()
	opt.FarFieldCompensated = *compensated
	if *injectCrash != "" {
		inj, err := parseCrash(*injectCrash)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdtd: -inject-crash: %v\n", err)
			os.Exit(2)
		}
		opt.Inject = inj
	}
	recovery := *ckEvery > 0 || *resume
	var tally *machine.Tally

	start := time.Now()
	var res *fdtd.Result
	var err error
	switch {
	case *build == "seq":
		res, err = fdtd.RunSequentialOpts(spec, *compensated)
	case *build == "par" && recovery:
		if *py > 1 {
			fmt.Fprintln(os.Stderr, "fdtd: crash recovery supports the 1-D slab decomposition only (py=1)")
			os.Exit(2)
		}
		var rep *fdtd.RecoveryReport
		rep, err = fdtd.RunWithRecovery(spec, fdtd.RecoveryOptions{
			P: *p, Opt: opt,
			CheckpointEvery: *ckEvery,
			Path:            *ckPath,
			Resume:          *resume,
		})
		if err == nil {
			res = rep.Result
			if rep.ResumedFrom > 0 {
				fmt.Printf("resumed from step %d (%s)\n", rep.ResumedFrom, *ckPath)
			}
			for _, c := range rep.Crashes {
				fmt.Printf("absorbed injected crash: rank %d at step %d\n", c.Rank, c.Step)
			}
			if rep.FellBack {
				fmt.Println("fell back to the retained previous checkpoint")
			}
			fmt.Printf("recovery: %d restarts, %d checkpoints saved\n",
				rep.Restarts, rep.CheckpointsSaved)
		}
	case *build == "ssp" || *build == "par":
		mode := mesh.Sim
		if *build == "par" {
			mode = mesh.Par
		}
		tally = machine.NewTally(*p * *py)
		opt.Mesh.Tally = tally
		if *py > 1 {
			res, err = fdtd.RunArchetype2D(spec, *p, *py, mode, opt)
		} else {
			res, err = fdtd.RunArchetype(spec, *p, mode, opt)
		}
	default:
		fmt.Fprintf(os.Stderr, "fdtd: unknown build %q\n", *build)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdtd: %v\n", err)
		os.Exit(1)
	}
	wall := time.Since(start)

	fmt.Printf("%s\nbuild=%s wall=%v\n", res, *build, wall)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range res.Probe {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	fmt.Printf("probe Ez range: [%.6g, %.6g] over %d steps\n", lo, hi, len(res.Probe))
	if spec.IsVersionC() {
		peakA, peakF := 0.0, 0.0
		for _, v := range res.FarA {
			if a := math.Abs(v); a > peakA {
				peakA = a
			}
		}
		for _, v := range res.FarF {
			if a := math.Abs(v); a > peakF {
				peakF = a
			}
		}
		fmt.Printf("far-field potentials: |A|max=%.6g |F|max=%.6g (%d samples)\n",
			peakA, peakF, len(res.FarA))
	}
	if *dump != "" {
		if err := gridio.SaveFile3(*dump, res.Ez); err != nil {
			fmt.Fprintf(os.Stderr, "fdtd: dump: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("final Ez written to %s\n", *dump)
	}
	if tally != nil {
		fmt.Printf("profile: %d messages, %.2f MB, %d phases\n",
			tally.TotalMessages(), float64(tally.TotalBytes())/1e6, tally.Phases())
		for _, m := range []machine.Model{machine.SunEthernet(), machine.IBMSP()} {
			simT := m.Time(tally)
			seqT := m.SequentialTime(tally)
			fmt.Printf("  %-40s simulated %8.3f s (speedup %.2f on %d procs)\n",
				m.Name, simT, machine.Speedup(seqT, simT), *p**py)
		}
	}
}
