// Command fdtd runs the electromagnetics application directly.
//
// Usage:
//
//	fdtd -version C -build seq              original sequential program
//	fdtd -version A -build ssp -p 4         simulated-parallel, 4 processes
//	fdtd -version C -build par -p 8         message-passing parallel
//	fdtd -nx 48 -ny 48 -nz 48 -steps 256    custom grid
//
// It prints a run summary, the probe series extrema, and (Version C)
// the peak far-field potentials, plus the work/message profile when a
// parallel build is selected.
//
// Fault tolerance (par build): -checkpoint-every N saves a hardened
// checkpoint every N steps under crash recovery, -resume restarts from
// the checkpoint file, and -inject-crash rank@step kills a rank
// mid-run to demonstrate recovery:
//
//	fdtd -build par -p 4 -checkpoint-every 50 -checkpoint run.ckp \
//	     -inject-crash 1@120
//
// Observability (ssp/par builds): -report writes a structured run
// report (wall time, per-phase breakdown, load imbalance,
// comm-to-compute ratio) and prints its table; -baseline additionally
// runs the same workload on P=1 to compute measured speedup and
// efficiency; -baseline-file attaches a previously written -report
// JSON as the baseline instead (refused with a warning when its spec
// fingerprint names a different workload); -trace-out writes a Chrome
// trace (open in
// chrome://tracing or https://ui.perfetto.dev) with one lane per rank;
// -bench-out writes the headline numbers as a BENCH_*.json artifact;
// -metrics-addr serves live Prometheus /metrics plus expvar and pprof
// while the run executes; -quiet suppresses the human-readable output:
//
//	fdtd -build par -p 4 -report report.json -trace-out trace.json \
//	     -baseline -metrics-addr :9090
//
// Scale-out transport (par build): -backend socket carries the
// channels over a real loopback socket mesh (-net tcp|unix) inside one
// process; -procs N runs N separate OS processes connected by sockets
// (one rank each, spawned and supervised by this launcher); -sweep
// "1,2,4,8" measures P-scaling with measured and machine-model
// speedups and prints the crossover table.  All of them produce
// bitwise-identical physics (Theorem 1):
//
//	fdtd -build par -p 4 -backend socket -net unix
//	fdtd -build par -procs 2 -dump ez.grid
//	fdtd -build par -sweep "1,2,4,8" -bench-out BENCH_obs.json -bench-append
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/channel"
	"repro/internal/fault"
	"repro/internal/fdtd"
	"repro/internal/gridio"
	"repro/internal/machine"
	"repro/internal/mesh"
	"repro/internal/obs"
)

// parseCrash parses "rank@step" for -inject-crash.
func parseCrash(s string) (*fault.Injector, error) {
	var rank, step int
	if _, err := fmt.Sscanf(s, "%d@%d", &rank, &step); err != nil {
		return nil, fmt.Errorf("want rank@step, got %q", s)
	}
	if rank < 0 || step < 0 {
		return nil, fmt.Errorf("rank and step must be non-negative in %q", s)
	}
	return fault.NewCrash(rank, step), nil
}

// usageErr reports a flag-validation failure and exits with status 2
// (matching flag package convention for usage errors).
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fdtd: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	version := flag.String("version", "C", "application version: A (near field) or C (near + far field)")
	build := flag.String("build", "seq", "build to run: seq | ssp | par")
	p := flag.Int("p", 4, "process count for ssp/par builds (x-axis split)")
	py := flag.Int("py", 1, "y-axis process count (>1 selects the 2-D block decomposition)")
	nx := flag.Int("nx", 33, "grid extent x")
	ny := flag.Int("ny", 33, "grid extent y")
	nz := flag.Int("nz", 33, "grid extent z")
	steps := flag.Int("steps", 128, "time steps")
	compensated := flag.Bool("compensated", false, "use the compensated (fixed) far field")
	boundary := flag.String("boundary", "pec", "outer boundary: pec | mur1")
	dump := flag.String("dump", "", "write the final Ez field to this file (gridio format)")
	ckEvery := flag.Int("checkpoint-every", 0, "par build: checkpoint every N steps under crash recovery (0 = off)")
	ckPath := flag.String("checkpoint", "fdtd.ckp", "checkpoint file path (with -checkpoint-every or -resume)")
	resume := flag.Bool("resume", false, "par build: resume from the checkpoint file (implies recovery)")
	injectCrash := flag.String("inject-crash", "", "par build: crash rank@step once, to be absorbed by recovery")
	report := flag.String("report", "", "ssp/par builds: write the structured run report (JSON) to this file")
	traceOut := flag.String("trace-out", "", "ssp/par builds: write a Chrome trace_event timeline (JSON) to this file")
	benchOut := flag.String("bench-out", "", "ssp/par builds: write headline metrics as a BENCH json artifact to this file")
	metricsAddr := flag.String("metrics-addr", "", "ssp/par builds: serve Prometheus /metrics (+expvar, pprof) on this address during the run")
	baseline := flag.Bool("baseline", false, "ssp/par builds: also run the workload on P=1 to measure speedup and efficiency")
	baselineFile := flag.String("baseline-file", "", "ssp/par builds: attach a prior -report JSON as the speedup baseline instead of re-running P=1")
	quiet := flag.Bool("quiet", false, "suppress the human-readable run summary (artifacts are still written)")
	backend := flag.String("backend", "inproc", "par build channel backend: inproc | socket (loopback socket mesh)")
	netKind := flag.String("net", "tcp", "socket network for -backend socket and -procs: tcp | unix")
	procsN := flag.Int("procs", 0, "par build: run across N OS processes connected by sockets")
	sweepList := flag.String("sweep", "", "par build: comma-separated process counts to scale over (e.g. \"1,2,4,8\")")
	benchAppend := flag.Bool("bench-append", false, "merge entries into the -bench-out file instead of overwriting it")
	roofline := flag.Bool("roofline", false, "measure kernel cells/sec per worker count against a stream-triad memory bound, then exit")
	rooflineWorkers := flag.String("roofline-workers", "1,2,4", "comma-separated tile-worker counts for -roofline")
	workerRank := flag.Int("worker-rank", -1, "internal: run as one rank worker of a -procs launch")
	workerDir := flag.String("worker-dir", "", "internal: run directory of the -procs launch")
	flag.Parse()

	// Worker mode: this process is one rank of a -procs run.  Everything
	// it needs arrives via the run directory, not the other flags.
	if *workerRank >= 0 || *workerDir != "" {
		if *workerRank < 0 || *workerDir == "" {
			usageErr("-worker-rank and -worker-dir are internal flags of -procs and are set together")
		}
		runWorkerProcess(*workerRank, *workerDir)
		return
	}

	// Reject conflicting flag combinations up front, before any work.
	// Baselines (measured or recorded) need the collector too: the run
	// report is where the speedup comparison lands.
	obsWanted := *report != "" || *traceOut != "" || *benchOut != "" || *metricsAddr != "" ||
		*baseline || *baselineFile != ""
	if flag.NArg() > 0 {
		usageErr("unexpected arguments: %v", flag.Args())
	}
	if *build != "ssp" && *build != "par" && *build != "seq" {
		usageErr("unknown build %q (want seq, ssp, or par)", *build)
	}
	if *build == "seq" && obsWanted && !*roofline {
		usageErr("-report/-trace-out/-bench-out/-metrics-addr/-baseline/-baseline-file instrument the archetype runtime; they require -build ssp or par")
	}
	if *roofline {
		if *sweepList != "" || *procsN > 0 || *ckEvery > 0 || *resume || *injectCrash != "" ||
			*dump != "" || *report != "" || *traceOut != "" || *metricsAddr != "" || *baseline || *baselineFile != "" {
			usageErr("-roofline is a self-contained measurement; combine it only with the grid flags, -roofline-workers, -bench-out/-bench-append, and -quiet")
		}
	}
	if *baseline && *baselineFile != "" {
		usageErr("-baseline and -baseline-file are mutually exclusive (measured vs recorded baseline)")
	}
	if *injectCrash != "" && *build != "par" {
		usageErr("-inject-crash requires -build par (crash recovery runs on the parallel build)")
	}
	if (*resume || *ckEvery > 0) && *build != "par" {
		usageErr("-resume and -checkpoint-every require -build par")
	}
	recovery := *ckEvery > 0 || *resume
	if *netKind != "tcp" && *netKind != "unix" {
		usageErr("unknown -net %q (want tcp or unix)", *netKind)
	}
	if *backend != "inproc" && *backend != "socket" {
		usageErr("unknown -backend %q (want inproc or socket)", *backend)
	}
	if *backend == "socket" {
		if *build != "par" {
			usageErr("-backend socket requires -build par (the socket mesh carries real parallel channels)")
		}
		if *py > 1 {
			usageErr("-backend socket supports the 1-D slab decomposition only (py=1)")
		}
		if recovery || *injectCrash != "" {
			usageErr("-backend socket does not compose with crash recovery or -inject-crash")
		}
	}
	if *procsN > 0 {
		if *build != "par" {
			usageErr("-procs requires -build par")
		}
		if *py > 1 {
			usageErr("-procs supports the 1-D slab decomposition only (py=1)")
		}
		if *backend != "inproc" {
			usageErr("-procs already runs over sockets; it does not combine with -backend")
		}
		if *sweepList != "" {
			usageErr("-sweep and -procs are mutually exclusive")
		}
		if recovery || *injectCrash != "" {
			usageErr("-procs does not compose with crash recovery or -inject-crash")
		}
		if *report != "" || *traceOut != "" || *metricsAddr != "" || *baseline || *baselineFile != "" {
			usageErr("-report/-trace-out/-metrics-addr/-baseline require an in-process backend; -procs supports -dump and -bench-out")
		}
	}
	if *sweepList != "" {
		if *build != "par" {
			usageErr("-sweep requires -build par")
		}
		if *py > 1 {
			usageErr("-sweep scales the 1-D slab decomposition only (py=1)")
		}
		if recovery || *injectCrash != "" || *dump != "" ||
			*report != "" || *traceOut != "" || *metricsAddr != "" || *baseline || *baselineFile != "" {
			usageErr("-sweep runs its own measurement matrix; combine it only with -bench-out/-bench-append, -backend, and -net")
		}
	}
	if *benchAppend && *benchOut == "" {
		usageErr("-bench-append requires -bench-out")
	}
	if *resume {
		if *ckPath == "" {
			usageErr("-resume requires a checkpoint file path (-checkpoint)")
		}
		_, errA := os.Stat(*ckPath)
		_, errB := os.Stat(fdtd.CheckpointPrevPath(*ckPath))
		if errA != nil && errB != nil {
			usageErr("-resume: no checkpoint at %s (or retained %s)", *ckPath, fdtd.CheckpointPrevPath(*ckPath))
		}
	}

	spec := fdtd.SpecTable1()
	spec.NX, spec.NY, spec.NZ, spec.Steps = *nx, *ny, *nz, *steps
	spec.Source.I, spec.Source.J, spec.Source.K = *nx/2, *ny/2, *nz/2
	spec.Probe = [3]int{*nx/2 + *nx/8, *ny / 2, *nz / 2}
	if *version == "A" {
		spec.FarField = nil
	}
	switch *boundary {
	case "pec":
		spec.Boundary = fdtd.BoundaryPEC
	case "mur1":
		spec.Boundary = fdtd.BoundaryMur1
	default:
		usageErr("unknown boundary %q", *boundary)
	}
	if err := spec.Validate(); err != nil {
		usageErr("%v", err)
	}

	opt := fdtd.DefaultOptions()
	opt.FarFieldCompensated = *compensated
	if *injectCrash != "" {
		inj, err := parseCrash(*injectCrash)
		if err != nil {
			usageErr("-inject-crash: %v", err)
		}
		opt.Inject = inj
	}
	// Self-contained run modes: the roofline report, the scaling sweep
	// and the multi-process launcher do their own measurement and
	// reporting.
	if *roofline {
		ws, err := parseSweep(*rooflineWorkers)
		if err != nil {
			usageErr("-roofline-workers: %v", err)
		}
		entries := runRoofline(spec, ws, *quiet)
		if *benchOut != "" {
			writeBench(*benchOut, *benchAppend, entries, *quiet)
		}
		return
	}
	if *sweepList != "" {
		entries, err := runSweep(spec, *sweepList, *backend, *netKind, *compensated, *quiet)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdtd: %v\n", err)
			os.Exit(1)
		}
		if *benchOut != "" {
			writeBench(*benchOut, *benchAppend, entries, *quiet)
		}
		return
	}
	if *procsN > 0 {
		res, wall, err := runProcs(spec, *procsN, *netKind, *compensated, *dump != "")
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdtd: %v\n", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Printf("%s\nbuild=par procs=%d wall=%v\n", res, *procsN, wall)
		}
		if *dump != "" {
			if err := gridio.SaveFile3(*dump, res.Ez); err != nil {
				fmt.Fprintf(os.Stderr, "fdtd: dump: %v\n", err)
				os.Exit(1)
			}
			if !*quiet {
				fmt.Printf("final Ez written to %s\n", *dump)
			}
		}
		if *benchOut != "" {
			prefix := fmt.Sprintf("net/procs-%s/P=%d", *netKind, *procsN)
			writeBench(*benchOut, *benchAppend, []obs.BenchEntry{
				{Name: prefix + "/wall", Value: wall.Seconds(), Unit: "s"},
			}, *quiet)
		}
		return
	}

	ranks := *p * *py
	var tally *machine.Tally
	var col *obs.Collector
	var stats *channel.NetStats
	if obsWanted {
		col = obs.New(ranks)
		opt.Mesh.Obs = col
		if *build == "par" {
			stats = channel.NewNetStats(ranks)
			opt.Mesh.ChanStats = stats
		}
	}
	if *metricsAddr != "" {
		srv, addr, err := obs.Serve(*metricsAddr, obs.Exporter{Collector: col, Net: stats})
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdtd: -metrics-addr: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		if !*quiet {
			fmt.Printf("serving metrics at http://%s/metrics (expvar at /debug/vars, pprof at /debug/pprof/)\n", addr)
		}
	}

	// The loopback socket mesh is dialed before the allocation
	// snapshot: allocs_per_step tracks the stepping cost of the solve,
	// and dial/accept of the long-lived transport is connection setup,
	// not stepping.  The transport's steady state is allocation-free
	// (BenchmarkSocketExchangeSteadyState in internal/channel), so
	// nothing the transport does per step escapes the measurement.
	if *backend == "socket" && (*build == "ssp" || *build == "par") && !recovery {
		tr, terr := channel.NewLoopbackMesh(ranks, *netKind, mesh.WireCodec(), channel.SocketOptions{Stats: stats})
		if terr != nil {
			fmt.Fprintf(os.Stderr, "fdtd: socket mesh: %v\n", terr)
			os.Exit(1)
		}
		defer tr.Close()
		opt.Mesh.Transport = tr
	}

	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	var res *fdtd.Result
	var err error
	switch {
	case *build == "seq":
		res, err = fdtd.RunSequentialOpts(spec, *compensated)
	case *build == "par" && recovery:
		if *py > 1 {
			usageErr("crash recovery supports the 1-D slab decomposition only (py=1)")
		}
		var rep *fdtd.RecoveryReport
		rep, err = fdtd.RunWithRecovery(spec, fdtd.RecoveryOptions{
			P: *p, Opt: opt,
			CheckpointEvery: *ckEvery,
			Path:            *ckPath,
			Resume:          *resume,
		})
		if err == nil {
			res = rep.Result
			if !*quiet {
				if rep.ResumedFrom > 0 {
					fmt.Printf("resumed from step %d (%s)\n", rep.ResumedFrom, *ckPath)
				}
				for _, c := range rep.Crashes {
					fmt.Printf("absorbed injected crash: rank %d at step %d\n", c.Rank, c.Step)
				}
				if rep.FellBack {
					fmt.Println("fell back to the retained previous checkpoint")
				}
				fmt.Printf("recovery: %d restarts, %d checkpoints saved\n",
					rep.Restarts, rep.CheckpointsSaved)
			}
		}
	case *build == "ssp" || *build == "par":
		mode := mesh.Sim
		if *build == "par" {
			mode = mesh.Par
		}
		tally = machine.NewTally(ranks)
		opt.Mesh.Tally = tally
		if *py > 1 {
			res, err = fdtd.RunArchetype2D(spec, *p, *py, mode, opt)
		} else {
			res, err = fdtd.RunArchetype(spec, *p, mode, opt)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdtd: %v\n", err)
		os.Exit(1)
	}
	col.Finish()
	wall := time.Since(start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	// Amortised heap objects per time step over the whole solve
	// (including setup and gather, so steady-state steps are strictly
	// cheaper).  Tracked in the bench trajectory to catch allocation
	// regressions on the message path.
	allocsPerStep := float64(msAfter.Mallocs-msBefore.Mallocs) / float64(*steps)

	if !*quiet {
		fmt.Printf("%s\nbuild=%s wall=%v\n", res, *build, wall)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range res.Probe {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		fmt.Printf("probe Ez range: [%.6g, %.6g] over %d steps\n", lo, hi, len(res.Probe))
		if spec.IsVersionC() {
			peakA, peakF := 0.0, 0.0
			for _, v := range res.FarA {
				if a := math.Abs(v); a > peakA {
					peakA = a
				}
			}
			for _, v := range res.FarF {
				if a := math.Abs(v); a > peakF {
					peakF = a
				}
			}
			fmt.Printf("far-field potentials: |A|max=%.6g |F|max=%.6g (%d samples)\n",
				peakA, peakF, len(res.FarA))
		}
	}
	if *dump != "" {
		if err := gridio.SaveFile3(*dump, res.Ez); err != nil {
			fmt.Fprintf(os.Stderr, "fdtd: dump: %v\n", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Printf("final Ez written to %s\n", *dump)
		}
	}
	if tally != nil && !*quiet {
		fmt.Printf("profile: %d messages, %.2f MB, %d phases\n",
			tally.TotalMessages(), float64(tally.TotalBytes())/1e6, tally.Phases())
		for _, m := range []machine.Model{machine.SunEthernet(), machine.IBMSP()} {
			simT := m.Time(tally)
			seqT := m.SequentialTime(tally)
			fmt.Printf("  %-40s simulated %8.3f s (speedup %.2f on %d procs)\n",
				m.Name, simT, machine.Speedup(seqT, simT), ranks)
		}
	}

	if col == nil {
		return
	}

	// Build the structured run report, with a measured P=1 baseline when
	// requested — the paper's speedup experiment, quantified from this
	// host's wall clocks.
	title := fmt.Sprintf("fdtd version=%s build=%s P=%d grid=%dx%dx%d steps=%d",
		*version, *build, ranks, *nx, *ny, *nz, *steps)
	runRep := obs.BuildReport(title, col.Snapshot())
	runRep.SpecFingerprint = fmt.Sprintf("%016x", spec.Fingerprint())
	if *baseline && ranks > 1 {
		mode := mesh.Sim
		if *build == "par" {
			mode = mesh.Par
		}
		baseCol := obs.New(1)
		baseOpt := fdtd.DefaultOptions()
		baseOpt.FarFieldCompensated = *compensated
		baseOpt.Mesh.Obs = baseCol
		if _, err := fdtd.RunArchetype(spec, 1, mode, baseOpt); err != nil {
			fmt.Fprintf(os.Stderr, "fdtd: baseline run: %v\n", err)
			os.Exit(1)
		}
		baseCol.Finish()
		baseRep := obs.BuildReport(title+" baseline", baseCol.Snapshot())
		baseRep.SpecFingerprint = runRep.SpecFingerprint
		if err := runRep.SetBaseline(baseRep); err != nil {
			fmt.Fprintf(os.Stderr, "fdtd: warning: baseline not attached: %v\n", err)
		}
	}
	if *baselineFile != "" {
		// A recorded baseline can silently go stale: the report on disk
		// may describe a different workload than this run.  SetBaseline
		// refuses fingerprint mismatches with a typed error; surface it
		// as a warning (speedup stays unset) rather than comparing a run
		// against the wrong workload.
		baseRep, err := obs.ReadReportFile(*baselineFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdtd: -baseline-file: %v\n", err)
			os.Exit(1)
		}
		if err := runRep.SetBaseline(baseRep); err != nil {
			var mismatch *obs.BaselineMismatchError
			if errors.As(err, &mismatch) {
				fmt.Fprintf(os.Stderr, "fdtd: warning: %s ignored: %v\n", *baselineFile, mismatch)
			} else {
				fmt.Fprintf(os.Stderr, "fdtd: -baseline-file: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if !*quiet {
		fmt.Print(runRep.Format())
	}
	if *report != "" {
		if err := runRep.WriteJSONFile(*report); err != nil {
			fmt.Fprintf(os.Stderr, "fdtd: %v\n", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Printf("run report written to %s\n", *report)
		}
	}
	if *traceOut != "" {
		if err := obs.WriteChromeTraceFile(*traceOut, col); err != nil {
			fmt.Fprintf(os.Stderr, "fdtd: %v\n", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Printf("chrome trace written to %s\n", *traceOut)
		}
	}
	if *benchOut != "" {
		// In-process runs keep the historical fdtd/<build> prefix; the
		// socket backend publishes under net/* so the two backends'
		// trajectories never collide in the bench gate.
		prefix := fmt.Sprintf("fdtd/%s/P=%d", *build, ranks)
		if *backend == "socket" {
			prefix = fmt.Sprintf("net/socket-%s/P=%d", *netKind, ranks)
		}
		entries := append(runRep.BenchEntries(prefix),
			obs.BenchEntry{Name: prefix + "/allocs_per_step", Value: allocsPerStep, Unit: "count"})
		if *backend == "socket" && stats != nil {
			entries = append(entries, obs.NetBenchEntries(prefix, stats)...)
		}
		writeBench(*benchOut, *benchAppend, entries, *quiet)
	}
}

// writeBench writes (or, with -bench-append, merges) bench entries to
// path and exits on failure.
func writeBench(path string, merge bool, entries []obs.BenchEntry, quiet bool) {
	var err error
	if merge {
		err = obs.MergeBenchFile(path, entries)
	} else {
		err = obs.WriteBenchFile(path, entries)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdtd: %v\n", err)
		os.Exit(1)
	}
	if !quiet {
		fmt.Printf("bench metrics written to %s\n", path)
	}
}
