package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"repro/internal/fdtd"
	"repro/internal/gridio"
	"repro/internal/obs"
	"repro/internal/procs"
)

// procsTimeout bounds a whole multi-process run: there is no global
// deadlock detector across processes (no process sees every rank), so
// a wedged group is killed rather than diagnosed.
const procsTimeout = 10 * time.Minute

// runProcs executes the application across n OS processes: it writes
// the shared workerConfig, spawns one `fdtd -worker-rank R` per rank,
// supervises the group fail-fast, and reassembles rank 0's report into
// a Result (fields included when dump is wanted).  Returns the result
// and the run's wall time.
func runProcs(spec fdtd.Spec, n int, network string, compensated, wantDump bool) (*fdtd.Result, time.Duration, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, 0, fmt.Errorf("locating own binary: %w", err)
	}
	dir, err := os.MkdirTemp("", "fdtd-procs")
	if err != nil {
		return nil, 0, err
	}
	defer os.RemoveAll(dir)
	addrs, err := procs.Addrs(network, n, dir)
	if err != nil {
		return nil, 0, err
	}
	cfg := workerConfig{Spec: spec, Network: network, Addrs: addrs, Compensated: compensated, DumpEz: wantDump}
	raw, err := json.Marshal(cfg)
	if err != nil {
		return nil, 0, err
	}
	if err := os.WriteFile(filepath.Join(dir, workerConfigFile), raw, 0o644); err != nil {
		return nil, 0, err
	}
	// One trace id correlates the whole run: it labels every worker in
	// the supervisor's failure reports, so a dead rank's stderr tail
	// names the run it belonged to even when several multi-process runs
	// interleave in one log stream.
	runTrace := obs.NewTraceSource(time.Now().UnixNano())()
	workers := make([]procs.Worker, n)
	for r := 0; r < n; r++ {
		cmd := exec.Command(exe, "-worker-rank", fmt.Sprint(r), "-worker-dir", dir)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		workers[r] = procs.Worker{Cmd: cmd, Label: fmt.Sprintf("rank %d [trace %s]", r, runTrace)}
	}
	start := time.Now()
	group, err := procs.StartWorkers(workers)
	if err != nil {
		return nil, 0, err
	}
	if err := group.Wait(procsTimeout); err != nil {
		return nil, 0, err
	}
	wall := time.Since(start)

	raw, err = os.ReadFile(workerResultFile(dir, 0))
	if err != nil {
		return nil, 0, fmt.Errorf("reading rank 0 result: %w", err)
	}
	var wr workerResult
	if err := json.Unmarshal(raw, &wr); err != nil {
		return nil, 0, fmt.Errorf("rank 0 result: %w", err)
	}
	res := &fdtd.Result{Spec: spec, Probe: wr.Probe, FarA: wr.FarA, FarF: wr.FarF, Work: wr.Work}
	if wantDump {
		ez, err := gridio.LoadFile3(filepath.Join(dir, workerEzFile))
		if err != nil {
			return nil, 0, fmt.Errorf("reading rank 0 field dump: %w", err)
		}
		res.Ez = ez
	}
	return res, wall, nil
}
