package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// buildBinary compiles the fdtd command once per test binary.
func buildBinary(t *testing.T) string {
	t.Helper()
	exe := filepath.Join(t.TempDir(), "fdtd")
	cmd := exec.Command("go", "build", "-o", exe, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return exe
}

func runCmd(t *testing.T, exe string, args ...string) []byte {
	t.Helper()
	cmd := exec.Command(exe, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", exe, args, err, out)
	}
	return out
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestNetSmoke is the end-to-end acceptance run of the scale-out
// transport: the same small problem solved sequentially, over the
// in-process parallel runtime, over a loopback socket mesh, and across
// real OS processes (-procs) must produce byte-identical final fields.
// `make net-smoke` runs exactly this test.
func TestNetSmoke(t *testing.T) {
	exe := buildBinary(t)
	dir := t.TempDir()
	grid := []string{"-nx", "20", "-ny", "10", "-nz", "10", "-steps", "12", "-quiet"}

	seqDump := filepath.Join(dir, "seq.grid")
	runCmd(t, exe, append([]string{"-build", "seq", "-dump", seqDump}, grid...)...)
	want := mustRead(t, seqDump)

	cases := []struct {
		name string
		args []string
	}{
		{"par-inproc", []string{"-build", "par", "-p", "4"}},
		{"par-socket-tcp", []string{"-build", "par", "-p", "4", "-backend", "socket", "-net", "tcp"}},
		{"par-socket-unix", []string{"-build", "par", "-p", "4", "-backend", "socket", "-net", "unix"}},
		{"procs-2-unix", []string{"-build", "par", "-procs", "2", "-net", "unix"}},
		{"procs-4-tcp", []string{"-build", "par", "-procs", "4", "-net", "tcp"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dump := filepath.Join(dir, tc.name+".grid")
			runCmd(t, exe, append(append(tc.args, "-dump", dump), grid...)...)
			if got := mustRead(t, dump); !bytes.Equal(got, want) {
				t.Fatalf("%s: final Ez differs from the sequential field", tc.name)
			}
		})
	}
}

// TestSweepSmoke runs a tiny scaling sweep end to end and checks the
// bench artifact mechanics, including -bench-append merging.
func TestSweepSmoke(t *testing.T) {
	exe := buildBinary(t)
	dir := t.TempDir()
	bench := filepath.Join(dir, "BENCH.json")
	out := runCmd(t, exe,
		"-build", "par", "-sweep", "1,2", "-nx", "16", "-ny", "8", "-nz", "8", "-steps", "8",
		"-bench-out", bench)
	if !bytes.Contains(out, []byte("crossover")) {
		t.Fatalf("sweep output missing crossover line:\n%s", out)
	}
	first := mustRead(t, bench)
	if !bytes.Contains(first, []byte("sweep/P=2/modelled_speedup_sun")) {
		t.Fatalf("bench file missing modelled speedup entry:\n%s", first)
	}
	// Appending a second artifact must keep the sweep entries.
	runCmd(t, exe,
		"-build", "par", "-p", "2", "-nx", "16", "-ny", "8", "-nz", "8", "-steps", "8",
		"-backend", "socket", "-quiet", "-bench-out", bench, "-bench-append")
	merged := mustRead(t, bench)
	for _, want := range []string{"sweep/P=2/modelled_speedup_sun", "net/socket-tcp/P=2/wire_flushes"} {
		if !bytes.Contains(merged, []byte(want)) {
			t.Fatalf("merged bench file missing %q:\n%s", want, merged)
		}
	}
}

// TestBaselineFile: a prior -report artifact attaches as the speedup
// baseline when the workload fingerprints match, and is refused with a
// visible warning (speedup left unset) when they differ — the stale-
// baseline trap the fingerprint exists to catch.
func TestBaselineFile(t *testing.T) {
	exe := buildBinary(t)
	dir := t.TempDir()
	grid := []string{"-nx", "16", "-ny", "8", "-nz", "8", "-steps", "8", "-quiet"}

	baseRep := filepath.Join(dir, "base.json")
	runCmd(t, exe, append([]string{"-build", "par", "-p", "1", "-report", baseRep}, grid...)...)

	// Matching fingerprint: speedup computed from the recorded wall.
	outRep := filepath.Join(dir, "p2.json")
	runCmd(t, exe, append([]string{"-build", "par", "-p", "2", "-baseline-file", baseRep, "-report", outRep}, grid...)...)
	rep := mustRead(t, outRep)
	for _, want := range []string{`"spec_fingerprint"`, `"speedup"`, `"baseline_wall_seconds"`} {
		if !bytes.Contains(rep, []byte(want)) {
			t.Fatalf("report missing %s after -baseline-file:\n%s", want, rep)
		}
	}

	// Different workload (other grid): typed mismatch warning on
	// stderr, run still succeeds, speedup stays unset.
	outRep2 := filepath.Join(dir, "p2-stale.json")
	cmd := exec.Command(exe, "-build", "par", "-p", "2", "-baseline-file", baseRep, "-report", outRep2,
		"-nx", "20", "-ny", "10", "-nz", "10", "-steps", "8", "-quiet")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("mismatched baseline must warn, not fail: %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("baseline")) || !bytes.Contains(out, []byte("fingerprint")) {
		t.Fatalf("no fingerprint-mismatch warning in output:\n%s", out)
	}
	if rep2 := mustRead(t, outRep2); bytes.Contains(rep2, []byte(`"speedup"`)) {
		t.Fatalf("stale baseline still produced a speedup:\n%s", rep2)
	}
}

// TestFlagValidation: conflicting flag combinations must exit with
// usage status 2 before doing any work.
func TestFlagValidation(t *testing.T) {
	exe := buildBinary(t)
	bad := [][]string{
		{"-build", "seq", "-backend", "socket"},
		{"-build", "par", "-backend", "bogus"},
		{"-build", "par", "-net", "udp"},
		{"-build", "par", "-procs", "2", "-backend", "socket"},
		{"-build", "par", "-procs", "2", "-sweep", "1,2"},
		{"-build", "par", "-procs", "2", "-baseline"},
		{"-build", "par", "-baseline", "-baseline-file", "x.json"},
		{"-build", "seq", "-baseline-file", "x.json"},
		{"-build", "par", "-sweep", "1,2", "-dump", "x.grid"},
		{"-build", "par", "-bench-append"},
		{"-worker-rank", "0"},
	}
	for _, args := range bad {
		cmd := exec.Command(exe, args...)
		out, err := cmd.CombinedOutput()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Fatalf("%v: want usage exit 2, got err=%v\n%s", args, err, out)
		}
	}
}
