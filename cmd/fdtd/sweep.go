package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/channel"
	"repro/internal/fdtd"
	"repro/internal/machine"
	"repro/internal/mesh"
	"repro/internal/obs"
)

// parseSweep parses the -sweep process list ("1,2,4,8").
func parseSweep(list string) ([]int, error) {
	var ps []int
	for _, tok := range strings.Split(list, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		p, err := strconv.Atoi(tok)
		if err != nil || p <= 0 {
			return nil, fmt.Errorf("bad process count %q (want positive integers, comma-separated)", tok)
		}
		ps = append(ps, p)
	}
	if len(ps) == 0 {
		return nil, fmt.Errorf("empty process list")
	}
	return ps, nil
}

// sweepRow is one P's measurements.
type sweepRow struct {
	p         int
	parWall   time.Duration // in-process Par
	sockWall  time.Duration // loopback socket backend (when enabled)
	measuredX float64       // seqWall / parWall
	modelSunX float64       // machine-model speedup, Sun/Ethernet
	modelIBMX float64       // machine-model speedup, IBM SP
}

// runSweep measures the P-scaling of the parallel build: a sequential
// reference, then for each P an in-process Par run (and, with
// -backend socket, a loopback-socket run), each checked bitwise
// against the sequential fields.  Wall clocks are whatever this host
// gives — on a single hardware thread a CPU-bound solve cannot beat
// P=1 — so the table also reports the paper's machine-model speedups,
// which are deterministic functions of the measured message/work tally
// and capture what the decomposition buys on the modelled machines.
func runSweep(spec fdtd.Spec, list, backend, network string, compensated, quiet bool) ([]obs.BenchEntry, error) {
	ps, err := parseSweep(list)
	if err != nil {
		return nil, fmt.Errorf("-sweep: %w", err)
	}
	// Unmeasured warmup so the measured reference doesn't pay first-run
	// costs (page faults, pool population) that the later runs skip.
	if _, err := fdtd.RunSequentialOpts(spec, compensated); err != nil {
		return nil, err
	}
	start := time.Now()
	seq, err := fdtd.RunSequentialOpts(spec, compensated)
	if err != nil {
		return nil, err
	}
	seqWall := time.Since(start)
	entries := []obs.BenchEntry{{Name: "sweep/seq/wall", Value: seqWall.Seconds(), Unit: "s"}}

	sun, ibm := machine.SunEthernet(), machine.IBMSP()
	rows := make([]sweepRow, 0, len(ps))
	for _, p := range ps {
		if p > spec.NX {
			return nil, fmt.Errorf("-sweep: cannot split %d x-planes over %d processes", spec.NX, p)
		}
		row := sweepRow{p: p}
		tally := machine.NewTally(p)
		opt := fdtd.DefaultOptions()
		opt.FarFieldCompensated = compensated
		opt.Mesh.Tally = tally
		start = time.Now()
		res, err := fdtd.RunArchetype(spec, p, mesh.Par, opt)
		if err != nil {
			return nil, fmt.Errorf("P=%d par: %w", p, err)
		}
		row.parWall = time.Since(start)
		if !seq.NearFieldEqual(res) {
			return nil, fmt.Errorf("P=%d par: near field differs from sequential", p)
		}
		row.measuredX = machine.Speedup(seqWall.Seconds(), row.parWall.Seconds())
		row.modelSunX = machine.Speedup(sun.SequentialTime(tally), sun.Time(tally))
		row.modelIBMX = machine.Speedup(ibm.SequentialTime(tally), ibm.Time(tally))

		if backend == "socket" {
			tr, err := channel.NewLoopbackMesh(p, network, mesh.WireCodec(), channel.SocketOptions{})
			if err != nil {
				return nil, fmt.Errorf("P=%d socket: %w", p, err)
			}
			sockOpt := fdtd.DefaultOptions()
			sockOpt.FarFieldCompensated = compensated
			sockOpt.Mesh.Transport = tr
			start = time.Now()
			sres, err := fdtd.RunArchetype(spec, p, mesh.Par, sockOpt)
			row.sockWall = time.Since(start)
			tr.Close()
			if err != nil {
				return nil, fmt.Errorf("P=%d socket: %w", p, err)
			}
			if !seq.NearFieldEqual(sres) {
				return nil, fmt.Errorf("P=%d socket: near field differs from sequential", p)
			}
		}
		prefix := fmt.Sprintf("sweep/P=%d", p)
		entries = append(entries,
			obs.BenchEntry{Name: prefix + "/wall", Value: row.parWall.Seconds(), Unit: "s"},
			obs.BenchEntry{Name: prefix + "/measured_speedup", Value: row.measuredX, Unit: "x"},
			obs.BenchEntry{Name: prefix + "/modelled_speedup_sun", Value: row.modelSunX, Unit: "x"},
			obs.BenchEntry{Name: prefix + "/modelled_speedup_ibmsp", Value: row.modelIBMX, Unit: "x"},
		)
		if backend == "socket" {
			entries = append(entries, obs.BenchEntry{
				Name: prefix + "/socket_wall", Value: row.sockWall.Seconds(), Unit: "s"})
		}
		rows = append(rows, row)
	}

	if !quiet {
		fmt.Printf("scaling sweep: grid %dx%dx%d steps=%d, sequential %.3fs (fields bitwise-checked at every P)\n",
			spec.NX, spec.NY, spec.NZ, spec.Steps, seqWall.Seconds())
		header := "   P   par wall   measured x   model Sun x   model IBM-SP x"
		if backend == "socket" {
			header += "   socket wall"
		}
		fmt.Println(header)
		for _, r := range rows {
			line := fmt.Sprintf("%4d %9.3fs %12.2f %13.2f %16.2f",
				r.p, r.parWall.Seconds(), r.measuredX, r.modelSunX, r.modelIBMX)
			if backend == "socket" {
				line += fmt.Sprintf(" %12.3fs", r.sockWall.Seconds())
			}
			fmt.Println(line)
		}
		reportCrossover(rows)
	}
	return entries, nil
}

// reportCrossover prints the first P (if any) where each speedup
// measure exceeds 1 — the sweep's headline.
func reportCrossover(rows []sweepRow) {
	firstOver := func(get func(sweepRow) float64) int {
		for _, r := range rows {
			if r.p > 1 && get(r) > 1 {
				return r.p
			}
		}
		return 0
	}
	if p := firstOver(func(r sweepRow) float64 { return r.measuredX }); p > 0 {
		fmt.Printf("crossover: measured speedup exceeds 1 from P=%d\n", p)
	} else {
		fmt.Println("crossover: measured speedup never exceeds 1 on this host (expected on a single hardware thread)")
	}
	if p := firstOver(func(r sweepRow) float64 { return r.modelSunX }); p > 0 {
		fmt.Printf("crossover: modelled (Sun/Ethernet) speedup exceeds 1 from P=%d\n", p)
	}
	if p := firstOver(func(r sweepRow) float64 { return r.modelIBMX }); p > 0 {
		fmt.Printf("crossover: modelled (IBM SP) speedup exceeds 1 from P=%d\n", p)
	}
}
