package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/channel"
	"repro/internal/fdtd"
	"repro/internal/gridio"
	"repro/internal/mesh"
)

// The -procs launcher and its rank workers share a run directory:
//
//	config.json       workerConfig, written by the launcher
//	ez.grid           rank 0's final Ez field (gridio), when DumpEz
//	result-<rank>.json  workerResult, one per rank
//
// The files, not the sockets, carry the launcher-facing data; the
// sockets carry only the archetype's channel traffic.

const (
	workerConfigFile = "config.json"
	workerEzFile     = "ez.grid"
)

// workerConfig is everything a rank worker needs to join the run.
type workerConfig struct {
	Spec        fdtd.Spec `json:"spec"`
	Network     string    `json:"network"` // "tcp" or "unix"
	Addrs       []string  `json:"addrs"`   // rendezvous address per rank
	Compensated bool      `json:"compensated"`
	DumpEz      bool      `json:"dump_ez"` // rank 0 writes ez.grid
}

// workerResult is one rank's report back to the launcher.  The global
// fields travel via ez.grid (they are large); everything else is
// small enough for JSON.
type workerResult struct {
	Rank  int       `json:"rank"`
	Probe []float64 `json:"probe"`
	FarA  []float64 `json:"far_a,omitempty"`
	FarF  []float64 `json:"far_f,omitempty"`
	Work  float64   `json:"work"`
}

func workerResultFile(dir string, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("result-%d.json", rank))
}

// runWorkerProcess is the main of a rank worker (fdtd -worker-rank R
// -worker-dir D): read the shared config, join the socket mesh, run
// this rank's slice of the application, report, exit.  Any failure is
// fatal with a non-zero status — the launcher kills the rest of the
// group and surfaces the message.
func runWorkerProcess(rank int, dir string) {
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "fdtd worker %d: %v\n", rank, err)
		os.Exit(1)
	}
	raw, err := os.ReadFile(filepath.Join(dir, workerConfigFile))
	if err != nil {
		fail(err)
	}
	var cfg workerConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fail(fmt.Errorf("config: %w", err))
	}
	if rank >= len(cfg.Addrs) {
		fail(fmt.Errorf("rank out of range: %d with %d addresses", rank, len(cfg.Addrs)))
	}
	tr, err := channel.DialMesh(cfg.Network, cfg.Addrs, rank, mesh.WireCodec(), channel.SocketOptions{})
	if err != nil {
		fail(err)
	}
	defer tr.Close()
	opt := fdtd.DefaultOptions()
	opt.FarFieldCompensated = cfg.Compensated
	res, err := fdtd.RunArchetypeWorker(cfg.Spec, rank, tr, opt)
	if err != nil {
		fail(err)
	}
	if rank == 0 && cfg.DumpEz {
		if err := gridio.SaveFile3(filepath.Join(dir, workerEzFile), res.Ez); err != nil {
			fail(fmt.Errorf("dump: %w", err))
		}
	}
	out, err := json.Marshal(workerResult{
		Rank: rank, Probe: res.Probe, FarA: res.FarA, FarF: res.FarF, Work: res.Work,
	})
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(workerResultFile(dir, rank), out, 0o644); err != nil {
		fail(err)
	}
}
