package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildBinary compiles the archserve command once per test binary.
func buildBinary(t *testing.T) string {
	t.Helper()
	exe := filepath.Join(t.TempDir(), "archserve")
	cmd := exec.Command("go", "build", "-o", exe, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return exe
}

// freePort grabs an ephemeral TCP port for the server to listen on.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestServeSmoke boots the real binary, exercises the job API end to
// end (compute, cache hit, invalid spec, stats, metrics) and verifies
// a clean SIGTERM drain.  `make serve-smoke` runs exactly this test.
func TestServeSmoke(t *testing.T) {
	exe := buildBinary(t)
	addr := freePort(t)
	cmd := exec.Command(exe, "-addr", addr, "-p", "2", "-workers", "1", "-queue", "4")
	var logs strings.Builder
	cmd.Stdout = &logs
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatalf("start archserve: %v", err)
	}
	defer cmd.Process.Kill()

	base := "http://" + addr
	waitReady(t, base)

	// Compute then cache: origins must differ, results must not.
	first := postPreset(t, base, "small-a", "computed")
	second := postPreset(t, base, "small-a", "cache")
	if first.Result.FieldHash != second.Result.FieldHash ||
		first.Result.Fingerprint != second.Result.Fingerprint {
		t.Fatalf("cache served a different result: %+v vs %+v", first.Result, second.Result)
	}

	// Invalid spec is a 400, not a crash.
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"spec":{"NX":2,"NY":2,"NZ":2,"Steps":1,"DT":0.5}}`))
	if err != nil {
		t.Fatalf("POST invalid: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec returned %d, want 400", resp.StatusCode)
	}

	var stats struct {
		JobsOK    int64 `json:"jobs_ok"`
		CacheHits int64 `json:"cache_hits"`
	}
	getJSON(t, base+"/v1/stats", &stats)
	if stats.JobsOK != 1 || stats.CacheHits != 1 {
		t.Fatalf("stats = %+v, want jobs_ok 1 cache_hits 1", stats)
	}
	if body := getText(t, base+"/metrics"); !strings.Contains(body, "archserve_cache_hits_total 1") {
		t.Fatalf("metrics missing cache hit counter:\n%s", body)
	}

	// SIGTERM must drain and exit zero.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signal: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("archserve exited %v after SIGTERM\n%s", err, logs.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("archserve did not drain within 30s\n%s", logs.String())
	}
	if !strings.Contains(logs.String(), "drained cleanly") {
		t.Fatalf("expected a clean drain, logs:\n%s", logs.String())
	}
}

type jobResponse struct {
	Origin string `json:"origin"`
	Result struct {
		Fingerprint string    `json:"fingerprint"`
		FieldHash   string    `json:"field_hash"`
		Probe       []float64 `json:"probe"`
	} `json:"result"`
}

func postPreset(t *testing.T, base, preset, wantOrigin string) jobResponse {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(fmt.Sprintf(`{"preset":%q}`, preset)))
	if err != nil {
		t.Fatalf("POST preset %s: %v", preset, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST preset %s: %d %s", preset, resp.StatusCode, body)
	}
	var jr jobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	if jr.Origin != wantOrigin {
		t.Fatalf("preset %s origin %q, want %q", preset, jr.Origin, wantOrigin)
	}
	return jr
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatal("archserve never became healthy")
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
}

func getText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return string(b)
}
