// Command archserve exposes the archetype runtime as a long-running
// HTTP job service: POST a simulation spec (or a named preset) to
// /v1/jobs and get its result, computed on a pool of warm workers with
// admission control and fingerprint-keyed result caching (sound by
// Theorem 1: any execution of the same spec is bitwise identical).
//
//	archserve -addr :8080 -p 2 -workers 2 -queue 16
//
// Endpoints: POST /v1/jobs, GET /v1/stats, GET /healthz, GET /metrics
// (Prometheus text).  SIGINT/SIGTERM triggers a graceful drain bounded
// by -drain-timeout; a second signal aborts immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		p            = flag.Int("p", 2, "ranks per job (warm mesh size)")
		workers      = flag.Int("workers", 2, "concurrent warm executors")
		queue        = flag.Int("queue", 16, "admission queue depth")
		network      = flag.String("network", "unix", "warm mesh socket family (unix or tcp)")
		timeout      = flag.Duration("job-timeout", 30*time.Second, "default per-job deadline")
		cacheN       = flag.Int("cache", 256, "result cache entries (negative disables)")
		batchMax     = flag.Int("batch-max", 4, "max small jobs coalesced into one dispatch")
		batchCells   = flag.Int("batch-cells", 32768, "largest grid (cells) considered small enough to batch")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
		drainGrace   = flag.Duration("drain-grace", 2*time.Second, "how long the HTTP listener stays up after the drain completes, so the cluster can pull the cache for warm handoff")
	)
	flag.Parse()

	srv := serve.New(serve.Config{
		P:              *p,
		Workers:        *workers,
		QueueDepth:     *queue,
		Network:        *network,
		DefaultTimeout: *timeout,
		CacheEntries:   *cacheN,
		BatchMax:       *batchMax,
		BatchCells:     *batchCells,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("archserve: listen %s: %v", *addr, err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	cfg := srv.Config()
	log.Printf("archserve: serving on http://%s (p=%d workers=%d queue=%d cache=%d)",
		ln.Addr(), cfg.P, cfg.Workers, cfg.QueueDepth, cfg.CacheEntries)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("archserve: serve: %v", err)
	case s := <-sig:
		log.Printf("archserve: %v: draining (up to %v; signal again to abort)", s, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sig
		log.Printf("archserve: second signal: aborting drain")
		cancel()
	}()

	// Drain the service first and close the listener last: the moment
	// srv.Shutdown flips the draining flag, /healthz answers 503, so the
	// cluster coordinator notices the drain on its next probe and pulls
	// this node's cache (GET /v1/cache/...) for warm handoff to the ring
	// successors.  Shutting the listener first — the old order — would
	// slam that window shut and force the successors to recompute
	// everything this cache already holds.  The -drain-grace window is
	// measured from the signal (a slow drain eats into it) and skipped
	// when the drain was aborted.
	drainStart := time.Now()
	drainErr := srv.Shutdown(ctx)
	if drainErr == nil {
		if wait := *drainGrace - time.Since(drainStart); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
			}
		}
	}
	httpSrv.Shutdown(ctx)
	if drainErr != nil {
		log.Printf("archserve: drain incomplete: %v", drainErr)
		fmt.Fprintln(os.Stderr, "archserve: exited with cancelled jobs")
		os.Exit(1)
	}
	log.Printf("archserve: drained cleanly")
}
