package main

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

func entry(name string, value float64, unit string) obs.BenchEntry {
	return obs.BenchEntry{Name: name, Value: value, Unit: unit}
}

func TestCompareLowerIsBetter(t *testing.T) {
	base := []obs.BenchEntry{entry("fdtd/par/P=4/wall", 1.0, "s")}

	// 5% slower with a 10% threshold: ok.
	d := compare(base, []obs.BenchEntry{entry("fdtd/par/P=4/wall", 1.05, "s")}, thresholds{strict: 0.10, timing: 0.10})
	if d.regressions != 0 || d.compared != 1 {
		t.Fatalf("5%% slower under 10%% threshold: regressions=%d compared=%d", d.regressions, d.compared)
	}

	// 20% slower: regression.
	d = compare(base, []obs.BenchEntry{entry("fdtd/par/P=4/wall", 1.20, "s")}, thresholds{strict: 0.10, timing: 0.10})
	if d.regressions != 1 {
		t.Fatalf("20%% slower: want 1 regression, got %d", d.regressions)
	}

	// 20% faster: improvement, never a regression.
	d = compare(base, []obs.BenchEntry{entry("fdtd/par/P=4/wall", 0.80, "s")}, thresholds{strict: 0.10, timing: 0.10})
	if d.regressions != 0 {
		t.Fatalf("20%% faster: want 0 regressions, got %d", d.regressions)
	}
}

func TestCompareHigherIsBetter(t *testing.T) {
	// Unit "x" flips the direction: a drop is the regression.
	base := []obs.BenchEntry{entry("sweep/P=4/modelled_speedup_sun", 2.0, "x")}
	d := compare(base, []obs.BenchEntry{entry("sweep/P=4/modelled_speedup_sun", 1.5, "x")}, thresholds{strict: 0.10, timing: 0.10})
	if d.regressions != 1 {
		t.Fatalf("speedup 2.0 -> 1.5: want 1 regression, got %d", d.regressions)
	}
	d = compare(base, []obs.BenchEntry{entry("sweep/P=4/modelled_speedup_sun", 2.5, "x")}, thresholds{strict: 0.10, timing: 0.10})
	if d.regressions != 0 {
		t.Fatalf("speedup 2.0 -> 2.5: want 0 regressions, got %d", d.regressions)
	}

	// The "/efficiency" suffix is the other higher-is-better marker.
	base = []obs.BenchEntry{entry("fdtd/par/P=4/efficiency", 0.9, "")}
	d = compare(base, []obs.BenchEntry{entry("fdtd/par/P=4/efficiency", 0.5, "")}, thresholds{strict: 0.10, timing: 0.10})
	if d.regressions != 1 {
		t.Fatalf("efficiency 0.9 -> 0.5: want 1 regression, got %d", d.regressions)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	// allocs 0 -> anything is a full regression; 0 -> 0 is ok.
	base := []obs.BenchEntry{entry("exchange/allocs", 0, "allocs")}
	d := compare(base, []obs.BenchEntry{entry("exchange/allocs", 3, "allocs")}, thresholds{strict: 0.10, timing: 0.10})
	if d.regressions != 1 {
		t.Fatalf("allocs 0 -> 3: want 1 regression, got %d", d.regressions)
	}
	d = compare(base, []obs.BenchEntry{entry("exchange/allocs", 0, "allocs")}, thresholds{strict: 0.10, timing: 0.10})
	if d.regressions != 0 {
		t.Fatalf("allocs 0 -> 0: want 0 regressions, got %d", d.regressions)
	}

	// A zero-baseline higher-is-better metric cannot regress (no
	// meaningful relative drop exists).
	base = []obs.BenchEntry{entry("sweep/P=1/measured_speedup", 0, "x")}
	d = compare(base, []obs.BenchEntry{entry("sweep/P=1/measured_speedup", 0.5, "x")}, thresholds{strict: 0.10, timing: 0.10})
	if d.regressions != 0 {
		t.Fatalf("zero-baseline speedup: want 0 regressions, got %d", d.regressions)
	}
}

func TestCompareOneSidedEntries(t *testing.T) {
	base := []obs.BenchEntry{
		entry("fdtd/par/P=4/wall", 1.0, "s"),
		entry("old/only", 2.0, "s"),
	}
	next := []obs.BenchEntry{
		entry("fdtd/par/P=4/wall", 1.0, "s"),
		entry("net/socket-tcp/P=4/wire_flushes", 24, "count"),
		entry("net/socket-tcp/P=4/wire_bytes", 9000, "bytes"),
	}
	d := compare(base, next, thresholds{strict: 0.10, timing: 0.10})
	if d.regressions != 0 {
		t.Fatalf("one-sided entries must not gate: got %d regressions", d.regressions)
	}
	if d.additions != 2 || d.removals != 1 || d.compared != 1 {
		t.Fatalf("want 2 additions, 1 removal, 1 compared; got %d/%d/%d",
			d.additions, d.removals, d.compared)
	}
	w := d.warning()
	if !strings.Contains(w, "2 added") || !strings.Contains(w, "1 removed") {
		t.Fatalf("warning summary missing counts: %q", w)
	}
	joined := strings.Join(d.lines, "\n")
	for _, want := range []string{"no baseline", "missing from new run"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("report lines missing %q:\n%s", want, joined)
		}
	}
}

// TestCompareTwoTierThresholds: timing-derived metrics (s, x, ratio)
// gate at the loose timing threshold while deterministic metrics
// (counts, bytes, allocs) gate at the strict one.
func TestCompareTwoTierThresholds(t *testing.T) {
	th := thresholds{strict: 0.10, timing: 0.50}
	base := []obs.BenchEntry{
		entry("fdtd/par/P=4/wall", 1.0, "s"),
		entry("fdtd/par/P=4/load_imbalance", 1.0, "ratio"),
		entry("fdtd/par/P=4/messages", 100, "count"),
	}
	// 20% noise on timing metrics passes; the same 20% growth in a
	// deterministic message count is a real regression.
	next := []obs.BenchEntry{
		entry("fdtd/par/P=4/wall", 1.20, "s"),
		entry("fdtd/par/P=4/load_imbalance", 1.20, "ratio"),
		entry("fdtd/par/P=4/messages", 120, "count"),
	}
	d := compare(base, next, th)
	if d.regressions != 1 {
		t.Fatalf("want only the count metric to regress, got %d regressions:\n%s",
			d.regressions, strings.Join(d.lines, "\n"))
	}
	for _, line := range d.lines {
		if strings.Contains(line, "REGRESSION") && !strings.Contains(line, "messages") {
			t.Fatalf("wrong metric gated: %s", line)
		}
	}
	// Past the timing threshold, walls still gate.
	d = compare(base, []obs.BenchEntry{entry("fdtd/par/P=4/wall", 1.60, "s")}, th)
	if d.regressions != 1 {
		t.Fatalf("60%% slower wall past 50%% timing threshold: want 1 regression, got %d", d.regressions)
	}
}

// TestCompareNeverGateTailMetrics: p99/p999 quantiles and burn rates
// are compared and reported ("noted") but never counted as
// regressions, no matter how far they move.
func TestCompareNeverGateTailMetrics(t *testing.T) {
	th := thresholds{strict: 0.10, timing: 0.50}
	base := []obs.BenchEntry{
		entry("cluster/load/p50", 10, "ms"),
		entry("cluster/load/p99", 20, "ms"),
		entry("cluster/load/p999", 30, "ms"),
		entry("cluster/load/burn_rate_fast", 0.1, "ratio"),
		entry("cluster/load/burn_rate_slow", 0.1, "ratio"),
	}
	next := []obs.BenchEntry{
		entry("cluster/load/p50", 11, "ms"),    // within timing threshold
		entry("cluster/load/p99", 500, "ms"),   // 25x: noted, not gated
		entry("cluster/load/p999", 3000, "ms"), // 100x: noted, not gated
		entry("cluster/load/burn_rate_fast", 50, "ratio"),
		entry("cluster/load/burn_rate_slow", 14, "ratio"),
	}
	d := compare(base, next, th)
	if d.regressions != 0 {
		t.Fatalf("tail metrics must never gate: got %d regressions:\n%s",
			d.regressions, strings.Join(d.lines, "\n"))
	}
	joined := strings.Join(d.lines, "\n")
	if !strings.Contains(joined, "noted") {
		t.Fatalf("huge tail moves should be reported as noted:\n%s", joined)
	}
	// The p50 percentile is NOT a never-gate metric: past the timing
	// threshold it still regresses.
	d = compare(base, []obs.BenchEntry{entry("cluster/load/p50", 100, "ms")}, th)
	if d.regressions != 1 {
		t.Fatalf("10x slower p50 past 50%% timing threshold: want 1 regression, got %d", d.regressions)
	}
}

// TestCompareNeverGateRooflineFamily: the roofline report's entries —
// roofline/* (stream bandwidth, bound, achieved-over-bound ratios) and
// the kernel/*/cells_per_sec rates — are host measurements recorded
// for trend visibility.  They appear without gating on first merge and
// never count as regressions afterwards, however far they move.
func TestCompareNeverGateRooflineFamily(t *testing.T) {
	th := thresholds{strict: 0.10, timing: 0.50}
	roof := []obs.BenchEntry{
		entry("roofline/stream_bw", 12e9, "B/s"),
		entry("roofline/bound", 67e6, "cells/s"),
		entry("roofline/pencil/W=1/of_bound", 1.7, "x"),
		entry("kernel/pencil/W=1/cells_per_sec", 118e6, "cells/s"),
		entry("kernel/ref/W=1/cells_per_sec", 19e6, "cells/s"),
	}
	// First appearance: additions only, no regressions.
	d := compare(nil, roof, th)
	if d.regressions != 0 || d.additions != len(roof) {
		t.Fatalf("first roofline merge: regressions=%d additions=%d, want 0/%d",
			d.regressions, d.additions, len(roof))
	}
	// A later run on a slower host halves every number (and the
	// of_bound ratio is higher-is-better with unit "x"): noted, never
	// gated.
	slower := []obs.BenchEntry{
		entry("roofline/stream_bw", 6e9, "B/s"),
		entry("roofline/bound", 33e6, "cells/s"),
		entry("roofline/pencil/W=1/of_bound", 0.4, "x"),
		entry("kernel/pencil/W=1/cells_per_sec", 50e6, "cells/s"),
		entry("kernel/ref/W=1/cells_per_sec", 8e6, "cells/s"),
	}
	d = compare(roof, slower, th)
	if d.regressions != 0 {
		t.Fatalf("roofline family must never gate: got %d regressions:\n%s",
			d.regressions, strings.Join(d.lines, "\n"))
	}
	if !strings.Contains(strings.Join(d.lines, "\n"), "noted") {
		t.Fatalf("large roofline moves should be reported as noted:\n%s",
			strings.Join(d.lines, "\n"))
	}
}

// TestCompareMsIsTimingDerived: percentile entries carry unit "ms" and
// must gate at the loose timing threshold, not the strict one.
func TestCompareMsIsTimingDerived(t *testing.T) {
	th := thresholds{strict: 0.10, timing: 0.50}
	base := []obs.BenchEntry{entry("cluster/load/p50", 10, "ms")}
	d := compare(base, []obs.BenchEntry{entry("cluster/load/p50", 13, "ms")}, th)
	if d.regressions != 0 {
		t.Fatalf("30%% p50 noise under the 50%% timing threshold must pass, got %d regressions", d.regressions)
	}
}

// TestCompareBucketFamilyCountedOnce: a histogram's bucket entries
// collapse to one addition/removal, and bucket-count drift never
// gates.
func TestCompareBucketFamilyCountedOnce(t *testing.T) {
	th := thresholds{strict: 0.10, timing: 0.50}
	base := []obs.BenchEntry{
		entry("fdtd/par/P=4/wall", 1.0, "s"),
		entry("old/load/latency_bucket/le_1", 5, "count"),
		entry("old/load/latency_bucket/le_2", 9, "count"),
		entry("old/load/latency_bucket/le_4", 12, "count"),
	}
	next := []obs.BenchEntry{
		entry("fdtd/par/P=4/wall", 1.0, "s"),
		entry("cluster/load/latency_bucket/le_0.5", 3, "count"),
		entry("cluster/load/latency_bucket/le_1", 8, "count"),
		entry("cluster/load/latency_bucket/le_2", 15, "count"),
		entry("cluster/load/latency_bucket/le_4", 20, "count"),
	}
	d := compare(base, next, th)
	if d.additions != 1 || d.removals != 1 {
		t.Fatalf("bucket families must count once: want 1 addition, 1 removal; got %d/%d\n%s",
			d.additions, d.removals, strings.Join(d.lines, "\n"))
	}
	joined := strings.Join(d.lines, "\n")
	if !strings.Contains(joined, "cluster/load/latency_bucket") || !strings.Contains(joined, "histogram family") {
		t.Fatalf("family lines missing:\n%s", joined)
	}

	// Buckets present in both runs drift with latency: reported, never
	// gated — the distribution shape is information, not a contract.
	base = []obs.BenchEntry{entry("cluster/load/latency_bucket/le_1", 5, "count")}
	d = compare(base, []obs.BenchEntry{entry("cluster/load/latency_bucket/le_1", 100, "count")}, th)
	if d.regressions != 0 {
		t.Fatalf("bucket drift must not gate, got %d regressions", d.regressions)
	}
}

func TestCompareNoWarningWhenAligned(t *testing.T) {
	base := []obs.BenchEntry{entry("a", 1, "s")}
	d := compare(base, base, thresholds{strict: 0.10, timing: 0.10})
	if w := d.warning(); w != "" {
		t.Fatalf("aligned metric sets should produce no warning, got %q", w)
	}
}

// TestCompareNeverGateHotshardFamily: the hotshard A/B entries and the
// per-run imbalance ratio are measurements of one comparison run — both
// arms move with host load, so they are compared for visibility but
// never gated (the actual hot-shard win is asserted by the smoke test,
// not the diff).
func TestCompareNeverGateHotshardFamily(t *testing.T) {
	th := thresholds{strict: 0.10, timing: 0.50}
	base := []obs.BenchEntry{
		entry("cluster/load/hotshard/p99_off", 40, "ms"),
		entry("cluster/load/hotshard/p99_on", 20, "ms"),
		entry("cluster/load/hotshard/imbalance_off", 2.4, "ratio"),
		entry("cluster/load/hotshard/imbalance_on", 1.2, "ratio"),
		entry("cluster/load/hotshard/p99_gain", 2.0, "x"),
		entry("cluster/load/hotshard/imbalance_gain", 2.0, "x"),
		entry("cluster/load/imbalance", 1.3, "ratio"),
		entry("cluster/load/hot/p99", 25, "ms"),
	}
	// A terrible follow-up run: gains collapse below 1, imbalance
	// explodes.  Noted, never gated.
	worse := []obs.BenchEntry{
		entry("cluster/load/hotshard/p99_off", 10, "ms"),
		entry("cluster/load/hotshard/p99_on", 80, "ms"),
		entry("cluster/load/hotshard/imbalance_off", 1.0, "ratio"),
		entry("cluster/load/hotshard/imbalance_on", 3.0, "ratio"),
		entry("cluster/load/hotshard/p99_gain", 0.1, "x"),
		entry("cluster/load/hotshard/imbalance_gain", 0.3, "x"),
		entry("cluster/load/imbalance", 2.9, "ratio"),
		entry("cluster/load/hot/p99", 900, "ms"),
	}
	d := compare(base, worse, th)
	if d.regressions != 0 {
		t.Fatalf("hotshard family must never gate: got %d regressions:\n%s",
			d.regressions, strings.Join(d.lines, "\n"))
	}
	if !strings.Contains(strings.Join(d.lines, "\n"), "noted") {
		t.Fatalf("large hotshard moves should be reported as noted:\n%s",
			strings.Join(d.lines, "\n"))
	}
}

// TestCompareNeverGateExploreFamily: schedule-exploration entries are
// tooling instrumentation — run counts and wall times move whenever a
// demo network or dependence mode is tuned, so they are noted but
// never gated.
func TestCompareNeverGateExploreFamily(t *testing.T) {
	th := thresholds{strict: 0.10, timing: 0.50}
	base := []obs.BenchEntry{
		entry("explore/racy/schedules", 6, "count"),
		entry("explore/racy/wall", 0.01, "s"),
		entry("explore/fdtd/actions", 4000, "count"),
	}
	grown := []obs.BenchEntry{
		entry("explore/racy/schedules", 90, "count"),
		entry("explore/racy/wall", 0.4, "s"),
		entry("explore/fdtd/actions", 12000, "count"),
	}
	d := compare(base, grown, th)
	if d.regressions != 0 {
		t.Fatalf("explore family must never gate: got %d regressions:\n%s",
			d.regressions, strings.Join(d.lines, "\n"))
	}
	if !strings.Contains(strings.Join(d.lines, "\n"), "noted") {
		t.Fatalf("large explore moves should be reported as noted:\n%s",
			strings.Join(d.lines, "\n"))
	}
}
