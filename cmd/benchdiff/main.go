// Command benchdiff compares two BENCH_*.json artifacts (the bench/v1
// shape written by the observability layer) and fails when the new run
// regresses past a threshold.  It is the CI gate behind `make
// bench-compare`: the committed baseline encodes the performance the
// fast path is supposed to deliver, and any change that slows the wall
// clock or inflates the allocation count by more than the threshold
// exits non-zero.
//
// Direction is inferred from the unit: "x" (speedup) and entries named
// ".../efficiency" are higher-is-better; everything else (seconds,
// bytes, counts, ratios) is lower-is-better.  Entries present in only
// one file are reported but never fail the gate, so the metric set can
// grow without breaking CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
)

func higherIsBetter(e obs.BenchEntry) bool {
	return e.Unit == "x" || strings.HasSuffix(e.Name, "/efficiency")
}

func main() {
	baseline := flag.String("baseline", "BENCH_obs.json", "baseline BENCH json artifact")
	newFile := flag.String("new", "", "new BENCH json artifact to compare against the baseline")
	threshold := flag.Float64("threshold", 0.10, "allowed fractional regression before failing (0.10 = 10%)")
	flag.Parse()
	if *newFile == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		flag.Usage()
		os.Exit(2)
	}

	base, err := obs.ReadBenchFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	next, err := obs.ReadBenchFile(*newFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	baseByName := make(map[string]obs.BenchEntry, len(base))
	for _, e := range base {
		baseByName[e.Name] = e
	}
	seen := make(map[string]bool, len(next))

	regressions := 0
	for _, e := range next {
		seen[e.Name] = true
		b, ok := baseByName[e.Name]
		if !ok {
			fmt.Printf("  new   %-32s %12.6g %s (no baseline)\n", e.Name, e.Value, e.Unit)
			continue
		}
		// Fractional change relative to the baseline, signed so that
		// positive always means "worse".
		var worse float64
		switch {
		case b.Value == 0:
			worse = 0
			if e.Value != 0 && !higherIsBetter(e) {
				worse = 1 // any growth from a zero baseline (e.g. allocs 0 -> n) is a full regression
			}
		case higherIsBetter(e):
			worse = (b.Value - e.Value) / b.Value
		default:
			worse = (e.Value - b.Value) / b.Value
		}
		status := "ok"
		if worse > *threshold {
			status = "REGRESSION"
			regressions++
		}
		fmt.Printf("  %-5s %-32s %12.6g -> %-12.6g %s (%+.1f%%)\n",
			status, e.Name, b.Value, e.Value, e.Unit, 100*worse)
	}
	for _, b := range base {
		if !seen[b.Name] {
			fmt.Printf("  gone  %-32s %12.6g %s (missing from new run)\n", b.Name, b.Value, b.Unit)
		}
	}

	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d metric(s) regressed more than %.0f%% vs %s\n",
			regressions, 100**threshold, *baseline)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: no regression beyond %.0f%% across %d metric(s)\n", 100**threshold, len(next))
}
