// Command benchdiff compares two BENCH_*.json artifacts (the bench/v1
// shape written by the observability layer) and fails when the new run
// regresses past a threshold.  It is the CI gate behind `make
// bench-compare`: the committed baseline encodes the performance the
// fast path is supposed to deliver, and any change that slows the wall
// clock or inflates the allocation count by more than the threshold
// exits non-zero.
//
// Direction is inferred from the unit: "x" (speedup) and entries named
// ".../efficiency" are higher-is-better; everything else (seconds,
// bytes, counts, ratios) is lower-is-better.  Entries present in only
// one file are reported as additions/removals and summarised as a
// warning, but never fail the gate, so the metric set can grow (and
// one-sided producers like -bench-append sweeps can contribute)
// without breaking CI.
//
// Two thresholds apply: deterministic metrics (counts, bytes, allocs)
// gate at -threshold, while timing-derived metrics — units "s", "ms",
// "x", and "ratio", all downstream of a wall clock — gate at the
// looser -timing-threshold, because a millisecond-scale wall on a
// loaded shared host swings far more than any real regression needs
// to.
//
// Tail metrics go one step further: p99/p999 quantiles, burn rates and
// histogram bucket counts are compared and reported ("noted") but
// never gate, because a single scheduler stall legitimately moves a
// tail quantile by an order of magnitude on a shared host.  Histogram
// bucket families (`.../latency_bucket/le_*`) are also collapsed to
// one entry in the additions/removals summary, so a reshaped
// histogram reads as one changed metric rather than dozens.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
)

func higherIsBetter(e obs.BenchEntry) bool {
	return e.Unit == "x" || strings.HasSuffix(e.Name, "/efficiency")
}

// timingDerived reports whether an entry's value is downstream of a
// wall-clock measurement and therefore noisy: walls ("s"), speedups
// ("x"), and the load/comm/efficiency ratios ("ratio").  Counts,
// bytes, and allocation metrics are deterministic and gate strictly.
func timingDerived(e obs.BenchEntry) bool {
	switch e.Unit {
	case "s", "ms", "x", "ratio":
		return true
	}
	return false
}

// bucketFamily returns the histogram family key when the entry is one
// cumulative bucket of a latency histogram (".../latency_bucket/le_5"
// -> ".../latency_bucket"), or "" for scalar entries.  Families are
// counted once in the additions/removals summary: a latency shift that
// re-populates different buckets is one reshaped histogram, not a
// dozen new metrics.
func bucketFamily(name string) string {
	if i := strings.Index(name, "/latency_bucket/le_"); i >= 0 {
		return name[:i] + "/latency_bucket"
	}
	return ""
}

// neverGate reports whether an entry is a one-sided tail metric: tail
// quantiles (p99/p999), SLO burn rates, and histogram bucket counts.
// These are compared and reported for visibility but never counted as
// regressions — one scheduler stall on a shared host legitimately
// moves a p999 or a fast-window burn rate by an order of magnitude,
// and gating on them would make the gate cry wolf.  The roofline
// family (roofline/* and the kernel cells_per_sec rates) is in the
// same class: achieved bandwidth and update rates are host-dependent
// measurements recorded for trend visibility, not gated promises.
// The hotshard family (<prefix>/hotshard/* and the per-run /imbalance
// ratio) is likewise measurement, not promise: both sides of the A/B
// move with host load, so the entries are tracked for trend visibility
// while the actual win is asserted by make hotshard-smoke.  The
// explore/* family (schedule-exploration wall times and run counts) is
// exploratory tooling instrumentation: counts change whenever a demo
// network or dependence mode is tuned, and the correctness claims are
// asserted exactly by the explore package's tests, not by the gate.
func neverGate(e obs.BenchEntry) bool {
	return strings.HasSuffix(e.Name, "/p99") ||
		strings.HasSuffix(e.Name, "/p999") ||
		strings.Contains(e.Name, "/burn_rate") ||
		strings.HasPrefix(e.Name, "roofline/") ||
		strings.HasPrefix(e.Name, "explore/") ||
		strings.HasSuffix(e.Name, "/cells_per_sec") ||
		strings.Contains(e.Name, "/hotshard/") ||
		strings.HasSuffix(e.Name, "/imbalance") ||
		bucketFamily(e.Name) != ""
}

// thresholds carries the two gate levels.
type thresholds struct {
	strict float64 // deterministic metrics
	timing float64 // timing-derived metrics
}

func (t thresholds) for_(e obs.BenchEntry) float64 {
	if timingDerived(e) {
		return t.timing
	}
	return t.strict
}

// diffResult is the outcome of comparing two artifacts.
type diffResult struct {
	lines       []string // human-readable per-entry report
	compared    int      // entries present in both files
	additions   int      // entries only in the new file
	removals    int      // entries only in the baseline
	regressions int      // compared entries past the threshold
}

// compare diffs the two entry sets.  Only entries present in both
// files can regress; one-sided entries are counted as additions or
// removals for the warning summary.
func compare(base, next []obs.BenchEntry, th thresholds) diffResult {
	var d diffResult
	baseByName := make(map[string]obs.BenchEntry, len(base))
	for _, e := range base {
		baseByName[e.Name] = e
	}
	seen := make(map[string]bool, len(next))
	addedFamilies := make(map[string]bool)
	for _, e := range next {
		seen[e.Name] = true
		b, ok := baseByName[e.Name]
		if !ok {
			if fam := bucketFamily(e.Name); fam != "" {
				if !addedFamilies[fam] {
					addedFamilies[fam] = true
					d.additions++
					d.lines = append(d.lines, fmt.Sprintf("  new   %-40s histogram family (no baseline)", fam))
				}
				continue
			}
			d.additions++
			d.lines = append(d.lines, fmt.Sprintf("  new   %-40s %12.6g %s (no baseline)", e.Name, e.Value, e.Unit))
			continue
		}
		d.compared++
		// Fractional change relative to the baseline, signed so that
		// positive always means "worse".
		var worse float64
		switch {
		case b.Value == 0:
			worse = 0
			if e.Value != 0 && !higherIsBetter(e) {
				worse = 1 // any growth from a zero baseline (e.g. allocs 0 -> n) is a full regression
			}
		case higherIsBetter(e):
			worse = (b.Value - e.Value) / b.Value
		default:
			worse = (e.Value - b.Value) / b.Value
		}
		status := "ok"
		if worse > th.for_(e) {
			if neverGate(e) {
				status = "noted" // one-sided tail metric: reported, never gated
			} else {
				status = "REGRESSION"
				d.regressions++
			}
		}
		d.lines = append(d.lines, fmt.Sprintf("  %-5s %-40s %12.6g -> %-12.6g %s (%+.1f%%)",
			status, e.Name, b.Value, e.Value, e.Unit, 100*worse))
	}
	goneFamilies := make(map[string]bool)
	for _, b := range base {
		if seen[b.Name] {
			continue
		}
		if fam := bucketFamily(b.Name); fam != "" {
			if !goneFamilies[fam] {
				goneFamilies[fam] = true
				d.removals++
				d.lines = append(d.lines, fmt.Sprintf("  gone  %-40s histogram family (missing from new run)", fam))
			}
			continue
		}
		d.removals++
		d.lines = append(d.lines, fmt.Sprintf("  gone  %-40s %12.6g %s (missing from new run)", b.Name, b.Value, b.Unit))
	}
	return d
}

// warning summarises the non-gating one-sided entries, or returns ""
// when the two files cover the same metric set.
func (d diffResult) warning() string {
	if d.additions == 0 && d.removals == 0 {
		return ""
	}
	return fmt.Sprintf("benchdiff: warning: %d added, %d removed metric(s) not gated (only metrics present in both files are compared)",
		d.additions, d.removals)
}

func main() {
	baseline := flag.String("baseline", "BENCH_obs.json", "baseline BENCH json artifact")
	newFile := flag.String("new", "", "new BENCH json artifact to compare against the baseline")
	threshold := flag.Float64("threshold", 0.10, "allowed fractional regression for deterministic metrics (0.10 = 10%)")
	timingThreshold := flag.Float64("timing-threshold", 0.50, "allowed fractional regression for timing-derived metrics (units s, x, ratio)")
	flag.Parse()
	if *newFile == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		flag.Usage()
		os.Exit(2)
	}

	base, err := obs.ReadBenchFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	next, err := obs.ReadBenchFile(*newFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	d := compare(base, next, thresholds{strict: *threshold, timing: *timingThreshold})
	for _, line := range d.lines {
		fmt.Println(line)
	}
	if w := d.warning(); w != "" {
		fmt.Fprintln(os.Stderr, w)
	}
	if d.regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d metric(s) regressed past the gate (%.0f%% deterministic, %.0f%% timing) vs %s\n",
			d.regressions, 100**threshold, 100**timingThreshold, *baseline)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: no regression beyond %.0f%% (deterministic) / %.0f%% (timing) across %d compared metric(s)\n",
		100**threshold, 100**timingThreshold, d.compared)
}
