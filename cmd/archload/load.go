package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/client"
	"repro/internal/fdtd"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/slo"
)

// loadConfig is everything one load run needs; main fills it from
// flags, tests fill it directly.
type loadConfig struct {
	// Target is the coordinator (or single archserve) base URL.  Empty
	// with Cluster > 0 means self-contained mode.
	Target  string
	Cluster int // self-contained: spin up N in-process nodes + coordinator
	P       int // ranks per job (self-contained nodes)
	Workers int // executors per node (self-contained nodes)

	Clients int // closed-loop client goroutines (ignored open-loop)
	Jobs    int
	Specs   int
	ZipfS   float64
	ZipfV   float64
	Seed    int64

	// Rate switches to open-loop mode: arrivals form a Poisson process
	// of this intensity (jobs/second), each request launched at its
	// scheduled instant regardless of how many are still in flight, and
	// latency measured from the scheduled arrival — not the actual send
	// — so a stalled service cannot suppress the samples that would
	// indict it (coordinated omission).  0 keeps the closed loop.
	Rate float64

	// SLO evaluates the run against a spec like "p99<250ms,err<1%"
	// (see internal/slo); empty disables evaluation.
	SLO string

	// InjectLatency adds a fixed synthetic delay to every measured
	// latency — a test hook that simulates a uniformly degraded service
	// so the SLO failure path can be exercised deterministically.
	InjectLatency time.Duration

	// SampleTrace fetches the merged Chrome trace of one computed job
	// from the coordinator after the run.
	SampleTrace bool

	// HotDisabled turns off the coordinator's hot-shard layer in
	// self-contained mode — the baseline arm of a -hotshard comparison.
	HotDisabled bool

	Quiet bool // suppress progress logging (tests)
}

func (c loadConfig) withDefaults() loadConfig {
	if c.P <= 0 {
		c.P = 2
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Jobs <= 0 {
		c.Jobs = 200
	}
	if c.Specs <= 0 {
		c.Specs = 32
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.ZipfV < 1 {
		c.ZipfV = 1.0
	}
	return c
}

// sample is one request's outcome.  start is the latency-measurement
// origin: the scheduled arrival in open-loop mode, the actual send in
// closed-loop mode — both as offsets from the run start.
type sample struct {
	start    time.Duration
	latency  time.Duration
	status   int
	origin   string
	degraded bool
	err      bool // transport-level failure
	trace    string
	specIdx  int // workload spec index; 0 is the zipf head (the hot key)
}

// loadResult is the structured outcome of one run.
type loadResult struct {
	Total, OK, Errs, Overloaded, Degraded, CacheHits int
	Elapsed                                          time.Duration
	Throughput                                       float64 // ok jobs per second
	Hist                                             obs.HistSnapshot
	// HotHist is the latency histogram restricted to the zipf head
	// (spec index 0) — the requests hot-shard routing acts on.
	HotHist obs.HistSnapshot
	// Imbalance is max/mean of per-node served counts from the
	// coordinator's /v1/stats after the run (1.0 = perfectly even; 0
	// when the target exposes no node stats).
	Imbalance    float64
	SLO          *slo.Report // nil unless requested
	SampledTrace string      // trace id of the sampled job
	TraceJSON    []byte      // merged Chrome trace for it
	samples      []sample
}

// BenchEntries renders the run as BENCH-file entries under prefix:
// histogram-derived percentiles (p50/p95/p99/p999), cumulative bucket
// counts, throughput and rates, and — when an SLO was evaluated — the
// worst burn rate per window plus the verdict.
func (r *loadResult) BenchEntries(prefix string) []obs.BenchEntry {
	entries := r.Hist.PercentileBenchEntries(prefix)
	entries = append(entries, r.Hist.BucketBenchEntries(prefix)...)
	frac := func(n int) float64 {
		if r.Total == 0 {
			return 0
		}
		return float64(n) / float64(r.Total)
	}
	entries = append(entries,
		obs.BenchEntry{Name: prefix + "/throughput", Value: r.Throughput, Unit: "jobs/s"},
		obs.BenchEntry{Name: prefix + "/error_rate", Value: frac(r.Errs), Unit: "frac"},
		obs.BenchEntry{Name: prefix + "/rate_429", Value: frac(r.Overloaded), Unit: "frac"},
		obs.BenchEntry{Name: prefix + "/degraded_rate", Value: frac(r.Degraded), Unit: "frac"},
		obs.BenchEntry{Name: prefix + "/cache_hit_rate", Value: frac(r.CacheHits), Unit: "frac"},
	)
	if r.HotHist.Count > 0 {
		entries = append(entries, obs.BenchEntry{
			Name:  prefix + "/hot/p99",
			Value: float64(r.HotHist.QuantileDuration(0.99)) / float64(time.Millisecond),
			Unit:  "ms",
		})
	}
	if r.Imbalance > 0 {
		entries = append(entries, obs.BenchEntry{Name: prefix + "/imbalance", Value: r.Imbalance, Unit: "ratio"})
	}
	if r.SLO != nil {
		var fast, slow float64
		for _, or := range r.SLO.Objectives {
			fast = math.Max(fast, or.Fast.Burn)
			slow = math.Max(slow, or.Slow.Burn)
		}
		pass := 0.0
		if r.SLO.Pass {
			pass = 1.0
		}
		entries = append(entries,
			obs.BenchEntry{Name: prefix + "/burn_rate_fast", Value: fast, Unit: "ratio"},
			obs.BenchEntry{Name: prefix + "/burn_rate_slow", Value: slow, Unit: "ratio"},
			obs.BenchEntry{Name: prefix + "/slo_pass", Value: pass, Unit: "bool"},
		)
	}
	return entries
}

// loadSpec is spec i of the population: a fast Version A run whose
// source delay perturbs the fingerprint without changing the cost, so
// every distinct i is a distinct cache key of identical weight.
func loadSpec(i int) fdtd.Spec {
	s := fdtd.SpecSmallA()
	s.Source.Delay = 5 + float64(i)
	return s
}

// localNode is one self-contained in-process archserve.
type localNode struct {
	srv  *serve.Server
	http *http.Server
}

// startLocalCluster spins up n nodes and a coordinator, returning the
// coordinator URL and a teardown function.
func startLocalCluster(n, p, workers int, hotDisabled bool) (string, func(), error) {
	var nodes []localNode
	var roster []cluster.Node
	teardown := func() {
		for _, nd := range nodes {
			nd.http.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			nd.srv.Shutdown(ctx)
			cancel()
		}
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			teardown()
			return "", nil, err
		}
		name := fmt.Sprintf("n%d", i)
		s := serve.New(serve.Config{P: p, Workers: workers, Name: name})
		hs := &http.Server{Handler: s.Handler()}
		go hs.Serve(ln)
		nodes = append(nodes, localNode{srv: s, http: hs})
		roster = append(roster, cluster.Node{
			Name: name,
			URL:  "http://" + ln.Addr().String(),
		})
	}
	coord, err := cluster.New(cluster.Config{
		Nodes:  roster,
		Member: cluster.MemberConfig{ProbeInterval: 100 * time.Millisecond},
		Client: client.Policy{},
		Hot:    cluster.HotConfig{Disabled: hotDisabled},
		Seed:   1,
	})
	if err != nil {
		teardown()
		return "", nil, err
	}
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		coord.Close()
		teardown()
		return "", nil, err
	}
	chs := &http.Server{Handler: coord.Handler()}
	go chs.Serve(cln)
	full := func() {
		chs.Close()
		coord.Close()
		teardown()
	}
	return "http://" + cln.Addr().String(), full, nil
}

// doRequest issues one job submission and classifies the outcome.
func doRequest(hc *http.Client, target string, spec fdtd.Spec) sample {
	body, _ := json.Marshal(serve.JobRequest{Spec: &spec})
	resp, err := hc.Post(target+"/v1/jobs", "application/json", bytes.NewReader(body))
	var s sample
	if err != nil {
		s.err = true
		return s
	}
	defer resp.Body.Close()
	s.status = resp.StatusCode
	if resp.StatusCode == http.StatusOK {
		var cr struct {
			Origin   string `json:"origin"`
			Degraded bool   `json:"degraded"`
			Trace    string `json:"trace"`
		}
		raw, _ := io.ReadAll(resp.Body)
		if json.Unmarshal(raw, &cr) == nil {
			s.origin = cr.Origin
			s.degraded = cr.Degraded
			s.trace = cr.Trace
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return s
}

// runLoad executes one load run: closed-loop (Clients goroutines, each
// firing as fast as its responses return) or open-loop (-rate: Poisson
// arrivals, one goroutine per request at its scheduled instant).
func runLoad(cfg loadConfig) (*loadResult, error) {
	cfg = cfg.withDefaults()
	target := cfg.Target
	if cfg.Cluster > 0 {
		if target != "" {
			return nil, fmt.Errorf("use Target or Cluster, not both")
		}
		url, teardown, err := startLocalCluster(cfg.Cluster, cfg.P, cfg.Workers, cfg.HotDisabled)
		if err != nil {
			return nil, fmt.Errorf("start cluster: %w", err)
		}
		defer teardown()
		target = url
		if !cfg.Quiet {
			log.Printf("archload: self-contained cluster of %d nodes behind %s", cfg.Cluster, target)
		}
	}
	if target == "" {
		return nil, fmt.Errorf("a target URL (or Cluster > 0) is required")
	}

	var spec *slo.Spec
	if cfg.SLO != "" {
		var err error
		if spec, err = slo.ParseSpec(cfg.SLO); err != nil {
			return nil, err
		}
	}

	var (
		mu      sync.Mutex
		samples []sample
	)
	add := func(s sample) {
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}
	hc := &http.Client{Timeout: 2 * time.Minute}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, cfg.ZipfV, uint64(cfg.Specs-1))
	// Spec choices and (open-loop) arrival offsets are drawn up front
	// from one seeded RNG, so the workload is reproducible regardless
	// of client interleaving.
	specIdx := make([]int, cfg.Jobs)
	for i := range specIdx {
		specIdx[i] = int(zipf.Uint64())
	}

	start := time.Now()
	var wg sync.WaitGroup
	if cfg.Rate > 0 {
		// Open loop: exponential inter-arrival gaps at intensity Rate.
		arrivals := make([]time.Duration, cfg.Jobs)
		var at time.Duration
		for i := range arrivals {
			at += time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second))
			arrivals[i] = at
		}
		for i := 0; i < cfg.Jobs; i++ {
			sched := arrivals[i]
			time.Sleep(time.Until(start.Add(sched)))
			wg.Add(1)
			go func(i int, sched time.Duration) {
				defer wg.Done()
				s := doRequest(hc, target, loadSpec(specIdx[i]))
				// Coordinated-omission-safe: latency runs from the
				// scheduled arrival, so time spent queued behind a slow
				// service counts against the service.
				s.start = sched
				s.latency = time.Since(start.Add(sched)) + cfg.InjectLatency
				s.specIdx = specIdx[i]
				add(s)
			}(i, sched)
		}
	} else {
		var next int64 = -1
		var idx sync.Mutex
		take := func() int {
			idx.Lock()
			defer idx.Unlock()
			next++
			if next >= int64(cfg.Jobs) {
				return -1
			}
			return int(next)
		}
		for c := 0; c < cfg.Clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := take()
					if i < 0 {
						return
					}
					t0 := time.Now()
					s := doRequest(hc, target, loadSpec(specIdx[i]))
					s.start = t0.Sub(start)
					s.latency = time.Since(t0) + cfg.InjectLatency
					s.specIdx = specIdx[i]
					add(s)
				}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &loadResult{Elapsed: elapsed, samples: samples}
	hist := obs.NewHistogram()
	hotHist := obs.NewHistogram()
	var sloSamples []slo.Sample
	for _, s := range samples {
		res.Total++
		hist.Record(s.latency)
		if s.specIdx == 0 {
			hotHist.Record(s.latency)
		}
		bad := s.err
		switch {
		case s.err:
			res.Errs++
		case s.status == http.StatusOK:
			res.OK++
			if s.degraded {
				res.Degraded++
			}
			if s.origin == "cache" || s.origin == "coalesced" {
				res.CacheHits++
			}
		case s.status == http.StatusTooManyRequests:
			res.Overloaded++
			bad = true
		default:
			res.Errs++
			bad = true
		}
		sloSamples = append(sloSamples, slo.Sample{Start: s.start, Latency: s.latency, Err: bad})
	}
	res.Hist = hist.Snapshot()
	res.HotHist = hotHist.Snapshot()
	res.Throughput = float64(res.OK) / elapsed.Seconds()
	res.Imbalance = fetchImbalance(hc, target)
	if spec != nil {
		res.SLO = slo.Eval(spec, sloSamples, elapsed)
	}
	if cfg.SampleTrace {
		res.sampleTrace(hc, target)
	}
	return res, nil
}

// fetchImbalance reads the coordinator's per-node served counts and
// returns max/mean — 1.0 is a perfectly even spread, N is everything on
// one node of N.  Best-effort: a target without node stats (a single
// archserve, say) yields 0.
func fetchImbalance(hc *http.Client, target string) float64 {
	resp, err := hc.Get(target + "/v1/stats")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var st struct {
		Nodes []struct {
			Served int64 `json:"served"`
		} `json:"nodes"`
	}
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&st) != nil || len(st.Nodes) == 0 {
		return 0
	}
	var total, max int64
	for _, n := range st.Nodes {
		total += n.Served
		if n.Served > max {
			max = n.Served
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(st.Nodes))
	return float64(max) / mean
}

// hotshardEntries renders a -hotshard A/B comparison (the same seeded
// workload with the hot-shard layer off, then on) as BENCH entries
// under <prefix>/hotshard/.  The *_gain entries are off/on ratios —
// > 1 means the layer helped.  All of these are measurements of one
// comparison run, compared-but-never-gated by benchdiff.
func hotshardEntries(prefix string, off, on *loadResult) []obs.BenchEntry {
	hotP99 := func(r *loadResult) float64 {
		return float64(r.HotHist.QuantileDuration(0.99)) / float64(time.Millisecond)
	}
	ratio := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		return a / b
	}
	p := prefix + "/hotshard/"
	return []obs.BenchEntry{
		{Name: p + "p99_off", Value: hotP99(off), Unit: "ms"},
		{Name: p + "p99_on", Value: hotP99(on), Unit: "ms"},
		{Name: p + "imbalance_off", Value: off.Imbalance, Unit: "ratio"},
		{Name: p + "imbalance_on", Value: on.Imbalance, Unit: "ratio"},
		{Name: p + "throughput_off", Value: off.Throughput, Unit: "jobs/s"},
		{Name: p + "throughput_on", Value: on.Throughput, Unit: "jobs/s"},
		{Name: p + "p99_gain", Value: ratio(hotP99(off), hotP99(on)), Unit: "x"},
		{Name: p + "imbalance_gain", Value: ratio(off.Imbalance, on.Imbalance), Unit: "x"},
	}
}

// sampleTrace picks one traced response — preferring a computed job,
// whose bundle carries rank-level spans, over cache hits — and fetches
// its merged Chrome trace from the coordinator.  Best-effort: a run
// with no retrievable trace just leaves the fields empty.
func (r *loadResult) sampleTrace(hc *http.Client, target string) {
	cands := make([]sample, 0, len(r.samples))
	for _, s := range r.samples {
		if s.trace != "" && s.status == http.StatusOK {
			cands = append(cands, s)
		}
	}
	// Computed jobs first, newest last (more likely still in the ring).
	sort.SliceStable(cands, func(i, j int) bool {
		ci := cands[i].origin == "computed"
		cj := cands[j].origin == "computed"
		return ci && !cj
	})
	for _, s := range cands {
		resp, err := hc.Get(target + "/v1/jobs/" + s.trace + "/trace")
		if err != nil {
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			continue
		}
		r.SampledTrace = s.trace
		r.TraceJSON = body
		return
	}
}
