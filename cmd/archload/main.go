// Command archload drives a cluster (or a single archserve node) with
// a zipf-distributed job mix and reports latency percentiles, error
// rate and backpressure rate — the observable half of the cluster's
// robustness story.  A zipf spec popularity curve is the realistic
// workload for a fingerprint-sharded cache: a few hot specs dominate
// (and should hit node caches), a long tail stays cold.
//
//	archload -coord http://127.0.0.1:8090 -clients 8 -jobs 200
//	archload -cluster 3 -clients 8 -jobs 200 -bench BENCH_obs.json
//	archload -cluster 3 -rate 200 -jobs 1000 -slo "p99<250ms,err<1%"
//
// With -cluster N the tool is self-contained: it spins up N in-process
// archserve nodes and a coordinator, runs the load, and tears it all
// down — so one command produces reproducible cluster numbers.
//
// Two load modes:
//
//   - Closed loop (default): -clients goroutines each issue the next
//     request as soon as the previous response returns.  Simple, but a
//     slow service throttles its own measurement.
//   - Open loop (-rate R): arrivals form a Poisson process of R
//     jobs/second launched at their scheduled instants, and latency is
//     measured from the scheduled arrival — the coordinated-omission-
//     safe discipline, where queueing delay a real client would suffer
//     shows up in the percentiles instead of vanishing.
//
// With -slo the run is evaluated against objectives like
// "p99<250ms,err<1%" (burn rates over a fast runDur/12 window and the
// whole run; see internal/slo) and the process exits nonzero on
// failure, so CI can gate on the verdict.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/obs"
)

func main() {
	var (
		coordURL    = flag.String("coord", "", "coordinator (or single archserve) base URL")
		clusterN    = flag.Int("cluster", 0, "self-contained mode: spin up N in-process nodes + coordinator")
		clients     = flag.Int("clients", 8, "closed-loop client goroutines")
		jobs        = flag.Int("jobs", 200, "total requests to issue")
		specs       = flag.Int("specs", 32, "distinct spec population size")
		zipfS       = flag.Float64("zipf-s", 1.2, "zipf exponent (>1; larger = hotter head)")
		zipfV       = flag.Float64("zipf-v", 1.0, "zipf offset (>=1)")
		p           = flag.Int("p", 2, "ranks per job (self-contained nodes)")
		workers     = flag.Int("workers", 1, "executors per node (self-contained nodes)")
		seed        = flag.Int64("seed", 1, "workload RNG seed")
		rate        = flag.Float64("rate", 0, "open-loop mode: Poisson arrival rate in jobs/s (0 = closed loop)")
		sloSpec     = flag.String("slo", "", `SLO spec to evaluate, e.g. "p99<250ms,err<1%" (exit 1 on failure)`)
		inject      = flag.Duration("inject-latency", 0, "add this synthetic delay to every measured latency (SLO failure testing)")
		traceOut    = flag.String("trace-out", "", "write one sampled job's merged Chrome trace to this file")
		benchOut    = flag.String("bench", "", "append results to this BENCH json file")
		prefix      = flag.String("prefix", "cluster/load", "bench entry name prefix")
		hotDisabled = flag.Bool("hot-disabled", false, "disable the coordinator's hot-shard layer (self-contained mode)")
		hotshard    = flag.Bool("hotshard", false, "A/B mode: run the same seeded workload with the hot-shard layer off, then on, and report the delta (requires -cluster)")
	)
	flag.Parse()

	if *coordURL != "" && *clusterN > 0 {
		log.Fatal("archload: use -coord or -cluster, not both")
	}
	cfg := loadConfig{
		Target:        *coordURL,
		Cluster:       *clusterN,
		P:             *p,
		Workers:       *workers,
		Clients:       *clients,
		Jobs:          *jobs,
		Specs:         *specs,
		ZipfS:         *zipfS,
		ZipfV:         *zipfV,
		Seed:          *seed,
		Rate:          *rate,
		SLO:           *sloSpec,
		InjectLatency: *inject,
		SampleTrace:   *traceOut != "",
		HotDisabled:   *hotDisabled,
	}

	if *hotshard {
		if *clusterN <= 0 {
			log.Fatal("archload: -hotshard needs -cluster (each arm spins up its own fresh cluster)")
		}
		runHotshardCompare(cfg, *prefix, *benchOut)
		return
	}

	res, err := runLoad(cfg)
	if err != nil {
		log.Fatalf("archload: %v", err)
	}
	if res.Total == 0 {
		log.Fatal("archload: no samples")
	}

	mode := fmt.Sprintf("closed loop, %d clients", *clients)
	if *rate > 0 {
		mode = fmt.Sprintf("open loop, %.1f jobs/s Poisson", *rate)
	}
	ms := func(q float64) time.Duration { return time.Duration(res.Hist.Quantile(q)).Round(time.Microsecond) }
	fmt.Printf("archload: %d requests in %v (%s, %d specs, zipf s=%.2f)\n",
		res.Total, res.Elapsed.Round(time.Millisecond), mode, *specs, *zipfS)
	fmt.Printf("  ok=%d err=%d 429=%d degraded=%d cache-hits=%d\n",
		res.OK, res.Errs, res.Overloaded, res.Degraded, res.CacheHits)
	fmt.Printf("  latency p50=%v p95=%v p99=%v p999=%v  throughput=%.1f jobs/s\n",
		ms(0.50), ms(0.95), ms(0.99), ms(0.999), res.Throughput)
	if res.SLO != nil {
		fmt.Print(res.SLO.Format())
	}
	if res.SampledTrace != "" {
		if err := os.WriteFile(*traceOut, res.TraceJSON, 0o644); err != nil {
			log.Fatalf("archload: write trace: %v", err)
		}
		log.Printf("archload: merged trace for job %s written to %s", res.SampledTrace, *traceOut)
	} else if *traceOut != "" {
		log.Printf("archload: no merged trace retrievable this run")
	}

	if *benchOut != "" {
		entries := res.BenchEntries(*prefix)
		if err := obs.MergeBenchFile(*benchOut, entries); err != nil {
			log.Fatalf("archload: write bench: %v", err)
		}
		log.Printf("archload: appended %d entries under %s to %s", len(entries), *prefix, *benchOut)
	}
	if res.Errs > 0 || (res.SLO != nil && !res.SLO.Pass) {
		os.Exit(1)
	}
}

// runHotshardCompare is -hotshard: the same seeded workload against two
// fresh self-contained clusters — hot-shard layer disabled, then
// enabled — reported as <prefix>/hotshard/* BENCH entries.
func runHotshardCompare(cfg loadConfig, prefix, benchOut string) {
	arm := func(disabled bool, label string) *loadResult {
		c := cfg
		c.HotDisabled = disabled
		res, err := runLoad(c)
		if err != nil {
			log.Fatalf("archload: %s arm: %v", label, err)
		}
		if res.Errs > 0 {
			log.Fatalf("archload: %s arm had %d transport errors", label, res.Errs)
		}
		return res
	}
	off := arm(true, "hot-off")
	on := arm(false, "hot-on")

	hotP99 := func(r *loadResult) time.Duration { return r.HotHist.QuantileDuration(0.99).Round(time.Microsecond) }
	fmt.Printf("archload hotshard A/B (%d jobs, %d specs, zipf s=%.2f, %d nodes):\n",
		cfg.Jobs, cfg.Specs, cfg.ZipfS, cfg.Cluster)
	fmt.Printf("  hot-key p99   off=%v on=%v\n", hotP99(off), hotP99(on))
	fmt.Printf("  imbalance     off=%.3f on=%.3f (max/mean served; 1.0 = even)\n", off.Imbalance, on.Imbalance)
	fmt.Printf("  throughput    off=%.1f on=%.1f jobs/s\n", off.Throughput, on.Throughput)

	if benchOut != "" {
		entries := hotshardEntries(prefix, off, on)
		if err := obs.MergeBenchFile(benchOut, entries); err != nil {
			log.Fatalf("archload: write bench: %v", err)
		}
		log.Printf("archload: appended %d entries under %s/hotshard to %s", len(entries), prefix, benchOut)
	}
}
