// Command archload drives a cluster (or a single archserve node) with
// a closed-loop, zipf-distributed job mix and reports latency
// percentiles, error rate and backpressure rate — the observable half
// of the cluster's robustness story.  A zipf spec popularity curve is
// the realistic workload for a fingerprint-sharded cache: a few hot
// specs dominate (and should hit node caches), a long tail stays cold.
//
//	archload -coord http://127.0.0.1:8090 -clients 8 -jobs 200
//	archload -cluster 3 -clients 8 -jobs 200 -bench BENCH_obs.json
//
// With -cluster N the tool is self-contained: it spins up N in-process
// archserve nodes and a coordinator, runs the load, and tears it all
// down — so one command produces reproducible cluster numbers.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/client"
	"repro/internal/fdtd"
	"repro/internal/obs"
	"repro/internal/serve"
)

// loadSpec is spec i of the population: a fast Version A run whose
// source delay perturbs the fingerprint without changing the cost, so
// every distinct i is a distinct cache key of identical weight.
func loadSpec(i int) fdtd.Spec {
	s := fdtd.SpecSmallA()
	s.Source.Delay = 5 + float64(i)
	return s
}

// sample is one request's outcome.
type sample struct {
	latency  time.Duration
	status   int
	origin   string
	degraded bool
	err      bool // transport-level failure
}

// stats aggregates samples.
type stats struct {
	mu      sync.Mutex
	samples []sample
}

func (st *stats) add(s sample) {
	st.mu.Lock()
	st.samples = append(st.samples, s)
	st.mu.Unlock()
}

// percentile returns the q-quantile of sorted latencies.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// localNode is one self-contained in-process archserve.
type localNode struct {
	srv  *serve.Server
	http *http.Server
	ln   net.Listener
}

// startLocalCluster spins up n nodes and a coordinator, returning the
// coordinator URL and a teardown function.
func startLocalCluster(n, p, workers int) (string, func(), error) {
	var nodes []localNode
	var roster []cluster.Node
	teardown := func() {
		for _, nd := range nodes {
			nd.http.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			nd.srv.Shutdown(ctx)
			cancel()
		}
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			teardown()
			return "", nil, err
		}
		s := serve.New(serve.Config{P: p, Workers: workers})
		hs := &http.Server{Handler: s.Handler()}
		go hs.Serve(ln)
		nodes = append(nodes, localNode{srv: s, http: hs, ln: ln})
		roster = append(roster, cluster.Node{
			Name: fmt.Sprintf("n%d", i),
			URL:  "http://" + ln.Addr().String(),
		})
	}
	coord, err := cluster.New(cluster.Config{
		Nodes:  roster,
		Member: cluster.MemberConfig{ProbeInterval: 100 * time.Millisecond},
		Client: client.Policy{},
		Seed:   1,
	})
	if err != nil {
		teardown()
		return "", nil, err
	}
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		coord.Close()
		teardown()
		return "", nil, err
	}
	chs := &http.Server{Handler: coord.Handler()}
	go chs.Serve(cln)
	full := func() {
		chs.Close()
		coord.Close()
		teardown()
	}
	return "http://" + cln.Addr().String(), full, nil
}

func main() {
	var (
		coordURL = flag.String("coord", "", "coordinator (or single archserve) base URL")
		clusterN = flag.Int("cluster", 0, "self-contained mode: spin up N in-process nodes + coordinator")
		clients  = flag.Int("clients", 8, "closed-loop client goroutines")
		jobs     = flag.Int("jobs", 200, "total requests to issue")
		specs    = flag.Int("specs", 32, "distinct spec population size")
		zipfS    = flag.Float64("zipf-s", 1.2, "zipf exponent (>1; larger = hotter head)")
		zipfV    = flag.Float64("zipf-v", 1.0, "zipf offset (>=1)")
		p        = flag.Int("p", 2, "ranks per job (self-contained nodes)")
		workers  = flag.Int("workers", 1, "executors per node (self-contained nodes)")
		seed     = flag.Int64("seed", 1, "workload RNG seed")
		benchOut = flag.String("bench", "", "append results to this BENCH json file")
		prefix   = flag.String("prefix", "cluster/load", "bench entry name prefix")
	)
	flag.Parse()

	target := *coordURL
	if *clusterN > 0 {
		if target != "" {
			log.Fatal("archload: use -coord or -cluster, not both")
		}
		url, teardown, err := startLocalCluster(*clusterN, *p, *workers)
		if err != nil {
			log.Fatalf("archload: start cluster: %v", err)
		}
		defer teardown()
		target = url
		log.Printf("archload: self-contained cluster of %d nodes behind %s", *clusterN, target)
	}
	if target == "" {
		log.Fatal("archload: -coord URL or -cluster N is required")
	}

	st := &stats{}
	var issued atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(c)))
			zipf := rand.NewZipf(rng, *zipfS, *zipfV, uint64(*specs-1))
			hc := &http.Client{Timeout: 2 * time.Minute}
			for issued.Add(1) <= int64(*jobs) {
				spec := loadSpec(int(zipf.Uint64()))
				body, _ := json.Marshal(serve.JobRequest{Spec: &spec})
				t0 := time.Now()
				resp, err := hc.Post(target+"/v1/jobs", "application/json", bytes.NewReader(body))
				s := sample{latency: time.Since(t0)}
				if err != nil {
					s.err = true
					st.add(s)
					continue
				}
				s.status = resp.StatusCode
				if resp.StatusCode == http.StatusOK {
					var cr struct {
						Origin   string `json:"origin"`
						Degraded bool   `json:"degraded"`
					}
					raw, _ := io.ReadAll(resp.Body)
					if json.Unmarshal(raw, &cr) == nil {
						s.origin = cr.Origin
						s.degraded = cr.Degraded
					}
				} else {
					io.Copy(io.Discard, resp.Body)
				}
				resp.Body.Close()
				st.add(s)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Aggregate.
	var ok, errs, overloaded, degraded, cacheHits int
	var lats []time.Duration
	for _, s := range st.samples {
		lats = append(lats, s.latency)
		switch {
		case s.err:
			errs++
		case s.status == http.StatusOK:
			ok++
			if s.degraded {
				degraded++
			}
			if s.origin == "cache" || s.origin == "coalesced" {
				cacheHits++
			}
		case s.status == http.StatusTooManyRequests:
			overloaded++
		default:
			errs++
		}
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	total := len(st.samples)
	if total == 0 {
		log.Fatal("archload: no samples")
	}
	p50 := percentile(lats, 0.50)
	p95 := percentile(lats, 0.95)
	p99 := percentile(lats, 0.99)
	rate := func(n int) float64 { return float64(n) / float64(total) }
	throughput := float64(ok) / elapsed.Seconds()

	fmt.Printf("archload: %d requests in %v (%d clients, %d specs, zipf s=%.2f)\n",
		total, elapsed.Round(time.Millisecond), *clients, *specs, *zipfS)
	fmt.Printf("  ok=%d err=%d 429=%d degraded=%d cache-hits=%d\n", ok, errs, overloaded, degraded, cacheHits)
	fmt.Printf("  latency p50=%v p95=%v p99=%v  throughput=%.1f jobs/s\n",
		p50.Round(time.Microsecond), p95.Round(time.Microsecond), p99.Round(time.Microsecond), throughput)

	if *benchOut != "" {
		entries := []obs.BenchEntry{
			{Name: *prefix + "/p50_ms", Value: float64(p50) / float64(time.Millisecond), Unit: "ms"},
			{Name: *prefix + "/p95_ms", Value: float64(p95) / float64(time.Millisecond), Unit: "ms"},
			{Name: *prefix + "/p99_ms", Value: float64(p99) / float64(time.Millisecond), Unit: "ms"},
			{Name: *prefix + "/throughput", Value: throughput, Unit: "jobs/s"},
			{Name: *prefix + "/error_rate", Value: rate(errs), Unit: "frac"},
			{Name: *prefix + "/rate_429", Value: rate(overloaded), Unit: "frac"},
			{Name: *prefix + "/degraded_rate", Value: rate(degraded), Unit: "frac"},
			{Name: *prefix + "/cache_hit_rate", Value: rate(cacheHits), Unit: "frac"},
		}
		if err := obs.MergeBenchFile(*benchOut, entries); err != nil {
			log.Fatalf("archload: write bench: %v", err)
		}
		log.Printf("archload: appended %d entries under %s to %s", len(entries), *prefix, *benchOut)
	}
	if errs > 0 {
		os.Exit(1)
	}
}
