package main

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestObsSmoke is the observability-plane smoke test (`make obs-smoke`):
// a 2-node self-contained cluster takes a 20-job open-loop run, and the
// run must yield a populated latency histogram, a retrievable merged
// trace whose spans share one trace id across coordinator and node
// lanes, and a well-formed passing SLO report.
func TestObsSmoke(t *testing.T) {
	res, err := runLoad(loadConfig{
		Cluster:     2,
		Jobs:        20,
		Rate:        50, // open loop: ~0.4s of Poisson arrivals
		Specs:       8,
		Seed:        7,
		SLO:         "p99<30s,err<50%", // generous: smoke checks plumbing, not performance
		SampleTrace: true,
		Quiet:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 20 {
		t.Fatalf("issued %d samples, want 20", res.Total)
	}
	if res.Errs > 0 {
		t.Fatalf("%d transport errors in smoke run", res.Errs)
	}

	// Histograms populated: every request recorded, quantiles ordered.
	if res.Hist.Count != 20 {
		t.Fatalf("histogram count %d, want 20", res.Hist.Count)
	}
	p50, p999 := res.Hist.Quantile(0.5), res.Hist.Quantile(0.999)
	if p50 <= 0 || p999 < p50 {
		t.Fatalf("degenerate histogram: p50=%d p999=%d", p50, p999)
	}

	// SLO report well-formed and passing.
	if res.SLO == nil || !res.SLO.Pass {
		t.Fatalf("SLO report missing or failing: %+v", res.SLO)
	}
	if len(res.SLO.Objectives) != 2 {
		t.Fatalf("SLO evaluated %d objectives, want 2", len(res.SLO.Objectives))
	}
	for _, or := range res.SLO.Objectives {
		if or.Slow.Good+or.Slow.Bad != 20 {
			t.Fatalf("objective %s slow window saw %d samples, want 20", or.Objective, or.Slow.Good+or.Slow.Bad)
		}
	}
	if !strings.Contains(res.SLO.Format(), "verdict: PASS") {
		t.Fatalf("report format lacks verdict:\n%s", res.SLO.Format())
	}

	// Merged trace retrievable, with coordinator + node lanes sharing
	// one trace id and rank-level spans present.
	if res.SampledTrace == "" {
		t.Fatal("no merged trace retrieved")
	}
	var ct struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(res.TraceJSON, &ct); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	pids := map[int]bool{}
	ranks := map[int]bool{}
	for _, ev := range ct.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		pids[ev.Pid] = true
		if ev.Tid > 0 {
			ranks[ev.Tid] = true
		}
		if ev.Args["trace"] != res.SampledTrace {
			t.Fatalf("span %q trace arg %v, want %s", ev.Name, ev.Args["trace"], res.SampledTrace)
		}
	}
	if len(pids) < 2 {
		t.Fatalf("merged trace has %d process lanes, want >= 2", len(pids))
	}
	if len(ranks) < 2 {
		t.Fatalf("merged trace has %d rank lanes, want >= 2 (P=2)", len(ranks))
	}

	// Bench entries: histogram percentiles incl. p999, bucket family,
	// burn rates and the verdict.
	entries := res.BenchEntries("cluster/load")
	names := map[string]bool{}
	for _, e := range entries {
		names[e.Name] = true
	}
	for _, want := range []string{
		"cluster/load/p50", "cluster/load/p95", "cluster/load/p99", "cluster/load/p999",
		"cluster/load/throughput", "cluster/load/error_rate",
		"cluster/load/burn_rate_fast", "cluster/load/burn_rate_slow", "cluster/load/slo_pass",
	} {
		if !names[want] {
			t.Errorf("bench entries lack %s", want)
		}
	}
	bucketEntries := 0
	for name := range names {
		if strings.Contains(name, "/latency_bucket/le_") {
			bucketEntries++
		}
	}
	if bucketEntries == 0 {
		t.Error("bench entries lack the latency bucket family")
	}
}

// TestObsSmokeSLOFail: the injected-latency hook must push the run over
// a tight latency objective and flip the verdict — proving the SLO gate
// can actually fail.
func TestObsSmokeSLOFail(t *testing.T) {
	res, err := runLoad(loadConfig{
		Cluster:       1,
		Jobs:          10,
		Rate:          50,
		Specs:         4,
		Seed:          11,
		SLO:           "p99<250ms,err<1%",
		InjectLatency: 400 * time.Millisecond,
		Quiet:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SLO == nil || res.SLO.Pass {
		t.Fatalf("injected 400ms latency should fail p99<250ms: %+v", res.SLO)
	}
	var latObj *string
	for _, or := range res.SLO.Objectives {
		if or.Objective == "p99<250ms" {
			if or.Pass {
				t.Fatalf("latency objective passed despite injection: %+v", or)
			}
			if or.Observed < 0.4 {
				t.Fatalf("observed p99 %.3fs, want >= 0.4 (injection included)", or.Observed)
			}
			s := or.Objective
			latObj = &s
		}
	}
	if latObj == nil {
		t.Fatal("latency objective missing from report")
	}
	// Burn-rate entries reflect the breach: slow-window burn must
	// exceed 1 (budget overrun) by a wide margin when every request is
	// slow.
	for _, e := range res.BenchEntries("cluster/load") {
		if e.Name == "cluster/load/burn_rate_slow" && e.Value < 10 {
			t.Fatalf("slow burn %.2f, want >> 1 when 100%% of requests breach", e.Value)
		}
		if e.Name == "cluster/load/slo_pass" && e.Value != 0 {
			t.Fatalf("slo_pass entry %v, want 0", e.Value)
		}
	}
}

// TestHotshardMeasurement: a small self-contained run populates the
// hot-key histogram (zipf head samples), computes a served-count
// imbalance from the coordinator's node stats, and renders both as
// bench entries; hotshardEntries then shapes an off/on pair into the
// full A/B family.
func TestHotshardMeasurement(t *testing.T) {
	res, err := runLoad(loadConfig{
		Cluster: 2,
		Clients: 4,
		Jobs:    30,
		Specs:   4,
		ZipfS:   1.5,
		Seed:    3,
		Quiet:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errs > 0 {
		t.Fatalf("%d transport errors", res.Errs)
	}
	if res.HotHist.Count == 0 {
		t.Fatal("hot-key histogram empty — the zipf head never sampled")
	}
	if res.HotHist.Count >= res.Hist.Count {
		t.Fatalf("hot histogram %d >= total %d — head filter not applied", res.HotHist.Count, res.Hist.Count)
	}
	if res.Imbalance < 1.0 {
		t.Fatalf("imbalance %.3f, want >= 1.0 (max/mean of served counts)", res.Imbalance)
	}
	names := map[string]bool{}
	for _, e := range res.BenchEntries("cluster/load") {
		names[e.Name] = true
	}
	if !names["cluster/load/hot/p99"] || !names["cluster/load/imbalance"] {
		t.Fatalf("bench entries lack hot/p99 or imbalance: %v", names)
	}

	// The A/B family from an off/on pair.
	got := map[string]float64{}
	for _, e := range hotshardEntries("cluster/load", res, res) {
		got[e.Name] = e.Value
	}
	for _, want := range []string{
		"cluster/load/hotshard/p99_off", "cluster/load/hotshard/p99_on",
		"cluster/load/hotshard/imbalance_off", "cluster/load/hotshard/imbalance_on",
		"cluster/load/hotshard/throughput_off", "cluster/load/hotshard/throughput_on",
		"cluster/load/hotshard/p99_gain", "cluster/load/hotshard/imbalance_gain",
	} {
		if _, ok := got[want]; !ok {
			t.Errorf("hotshard entries lack %s", want)
		}
	}
	if g := got["cluster/load/hotshard/p99_gain"]; g != 1.0 {
		t.Fatalf("same-run p99 gain %.3f, want exactly 1.0", g)
	}
	if g := got["cluster/load/hotshard/imbalance_gain"]; g != 1.0 {
		t.Fatalf("same-run imbalance gain %.3f, want exactly 1.0", g)
	}
}
