package main

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/explore"
	"repro/internal/fdtd"
	"repro/internal/grid"
)

// TestExploreSmoke drives the -explore mode end to end: every
// registered network meets its expectation (the archetype cores and the
// FDTD instance are determinate, the racy demo's violation is found
// automatically), the divergence minimizes to a short forced-pick
// prefix, and the saved artifact replays to the same divergent final
// state through the -replay path.
func TestExploreSmoke(t *testing.T) {
	var buf bytes.Buffer
	if code := runExplore(&buf, exploreConfig{network: "all", cont: "lowest"}); code != 0 {
		t.Fatalf("runExplore(all) exit %d:\n%s", code, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"expected violation FOUND",  // racy demo divergence found automatically
		"explore fdtd",              // the application network ran
		"mode=channel: 1 schedule(", // Theorem 1: premise-respecting nets reduce to one schedule
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explore all output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("explore all output contains FAIL:\n%s", out)
	}

	// Minimize the racy divergence and save the artifact.
	path := filepath.Join(t.TempDir(), "div.json")
	buf.Reset()
	code := runExplore(&buf, exploreConfig{
		network: "racy", cont: "lowest", minimize: true, artifactPath: path,
	})
	if code != 0 {
		t.Fatalf("runExplore(racy, minimize) exit %d:\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "minimal diverging schedule") {
		t.Errorf("minimize output missing trace:\n%s", buf.String())
	}

	a, err := explore.LoadArtifact(path)
	if err != nil {
		t.Fatalf("LoadArtifact: %v", err)
	}
	if len(a.Schedule.Picks) > 6 {
		t.Errorf("minimized schedule has %d forced picks, want <= 6", len(a.Schedule.Picks))
	}
	if a.Outcome == a.Reference {
		t.Errorf("artifact outcome %q equals reference", a.Outcome)
	}

	// Replay must reproduce the divergent final state bitwise.
	buf.Reset()
	if code := runReplay(&buf, path); code != 0 {
		t.Fatalf("runReplay exit %d:\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "reproduced: "+a.Outcome) {
		t.Errorf("replay output missing reproduction of %q:\n%s", a.Outcome, buf.String())
	}
}

func TestExploreBoundedTruncates(t *testing.T) {
	// racy finds its divergence on the second schedule, so truncating at
	// two still meets the expectation — exit 0, truncation reported.
	var buf bytes.Buffer
	code := runExplore(&buf, exploreConfig{network: "racy", cont: "lowest", maxSchedules: 2})
	if code != 0 {
		t.Fatalf("bounded explore(racy) exit %d, want 0:\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "truncated") {
		t.Errorf("bounded explore output does not mention truncation:\n%s", buf.String())
	}
	// A determinate network truncated before exhaustion can no longer
	// certify determinacy, so its expectation fails.
	buf.Reset()
	code = runExplore(&buf, exploreConfig{network: "farm", cont: "lowest", modeStr: "full", maxSchedules: 1})
	if code != 1 {
		t.Fatalf("bounded explore(farm) exit %d, want 1:\n%s", code, buf.String())
	}
}

func TestExploreUnknownInputs(t *testing.T) {
	var buf bytes.Buffer
	if code := runExplore(&buf, exploreConfig{network: "nope", cont: "lowest"}); code != 2 {
		t.Errorf("unknown network exit %d, want 2", code)
	}
	buf.Reset()
	if code := runExplore(&buf, exploreConfig{network: "racy", cont: "lowest", modeStr: "bogus"}); code != 2 {
		t.Errorf("unknown mode exit %d, want 2", code)
	}
	buf.Reset()
	if code := runExplore(&buf, exploreConfig{network: "all", cont: "lowest", artifactPath: "x.json"}); code != 2 {
		t.Errorf("artifact with -network all exit %d, want 2", code)
	}
	buf.Reset()
	if code := runReplay(&buf, filepath.Join(t.TempDir(), "missing.json")); code != 2 {
		t.Errorf("missing artifact exit %d, want 2", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":1,"network":"nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if code := runReplay(&buf, bad); code != 2 {
		t.Errorf("artifact with unknown network exit %d, want 2", code)
	}
}

// TestFdtdFingerprintIsBitwise checks the fingerprint distinguishes a
// one-ulp perturbation — "same fingerprint" genuinely means
// bitwise-equal final state.
func TestFdtdFingerprintIsBitwise(t *testing.T) {
	mk := func() *fdtd.Result {
		g := grid.New3(2, 2, 2, 0)
		g.Set(1, 1, 1, 0.3)
		return &fdtd.Result{Ex: g, Probe: []float64{1, 2, 3}}
	}
	a, b := mk(), mk()
	fa := fdtdFingerprint([]*fdtd.Result{a, nil})
	if fb := fdtdFingerprint([]*fdtd.Result{b, nil}); fa != fb {
		t.Errorf("equal results fingerprint differently: %s vs %s", fa, fb)
	}
	b.Ex.Set(1, 1, 1, math.Nextafter(0.3, 1)) // one ulp away
	if fb := fdtdFingerprint([]*fdtd.Result{b, nil}); fa == fb {
		t.Errorf("one-ulp perturbation not detected by fingerprint %s", fa)
	}
}
