// Command determinacy is the empirical Theorem 1 checker: it executes
// process networks under many distinct maximal interleavings and
// verifies that all of them terminate in the same final state.
//
// Usage:
//
//	determinacy              check the FDTD archetype program (default)
//	determinacy -demo        also run the didactic demos: a valid
//	                         network, a shared-memory violation, and a
//	                         deadlocking network
//	determinacy -p 4         process count for the FDTD check
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/fdtd"
	"repro/internal/harness"
	"repro/internal/sched"
)

func main() {
	p := flag.Int("p", 3, "process count for the FDTD determinacy check")
	reps := flag.Int("reps", 3, "free-running parallel repetitions")
	demo := flag.Bool("demo", false, "also run didactic demo networks")
	flag.Parse()

	rep, err := harness.RunDeterminacy(fdtd.SpecSmall(), *p, *reps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "determinacy: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(rep)
	if !rep.Deterministic() {
		os.Exit(1)
	}

	if !*demo {
		return
	}

	fmt.Println("\n--- demo: valid network (premises satisfied) ---")
	valid := func() []sched.Proc[int, int] {
		return []sched.Proc[int, int]{
			func(ctx *sched.Ctx[int]) int { ctx.Send(1, 7); return ctx.Recv(1) },
			func(ctx *sched.Ctx[int]) int { v := ctx.Recv(0); ctx.Send(0, v*v); return v },
		}
	}
	dr, err := core.CheckDeterminacy(valid, core.DeterminacyOptions[int]{CheckTraces: true})
	if err != nil {
		fmt.Fprintf(os.Stderr, "determinacy: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(dr)

	fmt.Println("\n--- demo: premise violation (shared variable) ---")
	racy := func() []sched.Proc[int, int] {
		shared := 0
		return []sched.Proc[int, int]{
			func(ctx *sched.Ctx[int]) int { ctx.Step("w"); shared = 1; ctx.Step("r"); return shared },
			func(ctx *sched.Ctx[int]) int { ctx.Step("w"); shared = 2; ctx.Step("r"); return shared },
		}
	}
	dr, err = core.CheckDeterminacy(racy, core.DeterminacyOptions[int]{
		Policies:       sched.DefaultPolicies(10),
		ConcurrentReps: -1, // controlled runs only: the race is the point
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "determinacy: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(dr)

	fmt.Println("\n--- demo: deadlocking network (receives precede sends) ---")
	deadlocked := func() []sched.Proc[int, int] {
		return []sched.Proc[int, int]{
			func(ctx *sched.Ctx[int]) int { v := ctx.Recv(1); ctx.Send(1, v); return v },
			func(ctx *sched.Ctx[int]) int { v := ctx.Recv(0); ctx.Send(0, v); return v },
		}
	}
	dr, _ = core.CheckDeterminacy(deadlocked, core.DeterminacyOptions[int]{
		Policies:       []sched.Policy{sched.Lowest{}, sched.Highest{}},
		ConcurrentReps: -1,
	})
	fmt.Print(dr)
}
