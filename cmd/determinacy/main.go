// Command determinacy is the Theorem 1 checker.  Its original mode
// samples a handful of scheduling policies and compares final states
// (the empirical check); the -explore mode upgrades that to systematic
// schedule exploration — dynamic partial-order reduction over the
// controlled-execution seam — which for small networks provably covers
// the reduced schedule space, finds shared-memory violations
// automatically, shrinks them to minimal forced-pick prefixes, and
// writes them as replayable artifacts.
//
// Usage:
//
//	determinacy                     empirical check of the FDTD archetype program
//	determinacy -demo               also run the didactic demo networks
//	determinacy -p 4                process count for the FDTD check
//	determinacy -explore            DPOR-explore every registered network
//	determinacy -explore -network racy -minimize -artifact div.json
//	                                find the racy demo's divergence, shrink
//	                                it, and save a replayable artifact
//	determinacy -replay div.json    re-execute a recorded divergence and
//	                                verify it reproduces bitwise
//	determinacy -explore -mode full -max-schedules 500
//	                                override the dependence mode / bound
//	                                the exploration
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/farm"
	"repro/internal/fdtd"
	"repro/internal/grid"
	"repro/internal/harness"
	"repro/internal/mesh"
	"repro/internal/sched"
)

func main() {
	p := flag.Int("p", 3, "process count for the FDTD determinacy check")
	reps := flag.Int("reps", 3, "free-running parallel repetitions")
	demo := flag.Bool("demo", false, "also run didactic demo networks")
	doExplore := flag.Bool("explore", false, "systematically explore schedules (DPOR) instead of sampling policies")
	networkName := flag.String("network", "all", "network to explore (see -explore output for names)")
	modeStr := flag.String("mode", "", "dependence mode: channel|steps|step-tags|full (default: each network's own)")
	maxSchedules := flag.Int("max-schedules", 0, "bound on completed schedules per network (0 = exhaustive)")
	minimize := flag.Bool("minimize", false, "ddmin-shrink the first divergence found to a minimal schedule")
	artifactPath := flag.String("artifact", "", "write the minimized divergence to this file as a replayable artifact")
	contSpec := flag.String("continue", "lowest", "policy spec completing each run past its forced prefix")
	replayPath := flag.String("replay", "", "replay a recorded divergence artifact and verify it reproduces")
	flag.Parse()

	switch {
	case *replayPath != "":
		os.Exit(runReplay(os.Stdout, *replayPath))
	case *doExplore:
		os.Exit(runExplore(os.Stdout, exploreConfig{
			network:      *networkName,
			modeStr:      *modeStr,
			cont:         *contSpec,
			maxSchedules: *maxSchedules,
			minimize:     *minimize,
			artifactPath: *artifactPath,
		}))
	default:
		os.Exit(runEmpirical(os.Stdout, *p, *reps, *demo))
	}
}

// exploreConfig is the -explore flag set, bundled for testability.
type exploreConfig struct {
	network      string
	modeStr      string
	cont         string
	maxSchedules int
	minimize     bool
	artifactPath string
}

// network is one registered process network with its exploration
// closures; the generic element/result types are erased here so the
// registry is a plain slice.
type network struct {
	name, desc string
	p          int
	mode       explore.DepMode // default dependence mode
	// expectDivergence flips the success criterion: the racy demo is
	// correct exactly when the explorer finds its divergence.
	expectDivergence bool
	explore          func(mode explore.DepMode, cont string, maxSchedules int) (*explore.Report, error)
	minimize         func(mode explore.DepMode, cont string, div explore.Divergence) (*explore.Minimized, error)
	replay           func(mode explore.DepMode, s sched.Schedule) (string, error)
}

// entry builds a registry entry for a concrete network type.
func entry[T, R any](name, desc string, p int, mode explore.DepMode, expectDiv bool,
	mk func() []sched.Proc[T, R], fp func([]R) string) network {
	opts := func(mode explore.DepMode, cont string, maxSchedules int) explore.Options[R] {
		return explore.Options[R]{Mode: mode, Continue: cont, MaxSchedules: maxSchedules, Fingerprint: fp}
	}
	return network{
		name: name, desc: desc, p: p, mode: mode, expectDivergence: expectDiv,
		explore: func(mode explore.DepMode, cont string, maxSchedules int) (*explore.Report, error) {
			return explore.Run(mk, opts(mode, cont, maxSchedules))
		},
		minimize: func(mode explore.DepMode, cont string, div explore.Divergence) (*explore.Minimized, error) {
			return explore.Minimize(mk, opts(mode, cont, 0), div)
		},
		replay: func(mode explore.DepMode, s sched.Schedule) (string, error) {
			return explore.ReplayOutcome(mk, opts(mode, "", 0), s)
		},
	}
}

// networks is the exploration registry: the didactic demos, the two
// archetype cores, and a small FDTD instance.
func networks() []network {
	validMk := func() []sched.Proc[int, int] {
		return []sched.Proc[int, int]{
			func(ctx *sched.Ctx[int]) int { ctx.Send(1, 7); return ctx.Recv(1) },
			func(ctx *sched.Ctx[int]) int { v := ctx.Recv(0); ctx.Send(0, v*v); return v },
		}
	}
	racyMk := func() []sched.Proc[int, int] {
		shared := 0
		mk := func(me int) sched.Proc[int, int] {
			return func(ctx *sched.Ctx[int]) int {
				ctx.Step("w")
				shared = me + 1
				ctx.Step("r")
				return shared
			}
		}
		return []sched.Proc[int, int]{mk(0), mk(1)}
	}
	deadlockMk := func() []sched.Proc[int, int] {
		return []sched.Proc[int, int]{
			func(ctx *sched.Ctx[int]) int { v := ctx.Recv(1); ctx.Send(1, v); return v },
			func(ctx *sched.Ctx[int]) int { v := ctx.Recv(0); ctx.Send(0, v); return v },
		}
	}
	const farmP = 3
	farmMk := func() []sched.Proc[farm.Msg[int], []int] {
		return farm.Procs(7, farmP, farm.DefaultOptions(), func(task int) int { return task * task })
	}
	const meshP = 3
	meshMk := func() []sched.Proc[mesh.Msg, float64] {
		return mesh.Procs(meshP, mesh.DefaultOptions(), func(c *mesh.Comm) float64 {
			v := c.Broadcast(1.5, 0)
			s := c.AllReduce(v*float64(c.Rank()+1), mesh.OpSum)
			c.Barrier()
			return s
		})
	}
	const fdtdP = 2
	spec := fdtdSpecTiny()
	slabs := grid.SlabDecompose3(spec.NX, spec.NY, spec.NZ, fdtdP, grid.AxisX)
	fdtdOpt := fdtd.DefaultOptions()
	fdtdMk := func() []sched.Proc[mesh.Msg, *fdtd.Result] {
		return mesh.Procs(fdtdP, fdtdOpt.Mesh, func(c *mesh.Comm) *fdtd.Result {
			return fdtd.SPMD(c, spec, slabs, fdtdOpt)
		})
	}
	return []network{
		entry("valid", "didactic premise-respecting exchange", 2, explore.DepFull, false, validMk, nil),
		entry("racy", "didactic shared-memory violation", 2, explore.DepSteps, true, racyMk, nil),
		entry("deadlock", "didactic receive-before-send cycle", 2, explore.DepFull, false, deadlockMk, nil),
		entry("farm", "task-farm archetype core (7 tasks, cyclic)", farmP, explore.DepChannel, false, farmMk, nil),
		entry("mesh", "mesh collectives (broadcast+allreduce+barrier)", meshP, explore.DepChannel, false, meshMk, nil),
		entry("fdtd", "FDTD archetype program, tiny instance", fdtdP, explore.DepChannel, false, fdtdMk, fdtdFingerprint),
	}
}

// fdtdSpecTiny is a minimal Version A instance: big enough to exercise
// the ghost exchanges and reductions, small enough that a single
// controlled run stays in the thousands of actions.
func fdtdSpecTiny() fdtd.Spec {
	return fdtd.Spec{
		NX: 6, NY: 4, NZ: 4,
		Steps: 2,
		DT:    0.5,
		Source: fdtd.SourceSpec{
			I: 3, J: 2, K: 2,
			Amplitude: 1, Delay: 1, Width: 1,
		},
		Probe: [3]int{4, 2, 2},
	}
}

// fdtdFingerprint hashes every rank's final fields, probe, and far
// field bitwise (Float64bits), so equal fingerprints mean bitwise-equal
// final states.
func fdtdFingerprint(finals []*fdtd.Result) string {
	h := fnv.New64a()
	var buf [8]byte
	addF64 := func(vs []float64) {
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	for _, r := range finals {
		if r == nil {
			h.Write([]byte{0xff})
			continue
		}
		for _, g := range []*grid.G3{r.Ex, r.Ey, r.Ez, r.Hx, r.Hy, r.Hz} {
			if g != nil {
				addF64(g.Data())
			}
		}
		addF64(r.Probe)
		addF64(r.FarA)
		addF64(r.FarF)
	}
	return fmt.Sprintf("fdtd:%016x", h.Sum64())
}

func findNetwork(name string) (network, bool) {
	for _, n := range networks() {
		if n.name == name {
			return n, true
		}
	}
	return network{}, false
}

// runExplore is the -explore mode: DPOR over one or all registered
// networks, optional minimization and artifact output.  Returns the
// process exit code: 0 iff every explored network met its expectation
// (determinate, or — for networks registered with expectDivergence —
// at least one divergence found).
func runExplore(w io.Writer, cfg exploreConfig) int {
	var nets []network
	if cfg.network == "all" {
		nets = networks()
	} else {
		n, ok := findNetwork(cfg.network)
		if !ok {
			fmt.Fprintf(w, "determinacy: unknown network %q; registered networks:\n", cfg.network)
			for _, n := range networks() {
				fmt.Fprintf(w, "  %-10s %s\n", n.name, n.desc)
			}
			return 2
		}
		nets = []network{n}
	}
	if cfg.artifactPath != "" && len(nets) != 1 {
		fmt.Fprintf(w, "determinacy: -artifact requires a single -network\n")
		return 2
	}

	code := 0
	for _, n := range nets {
		mode := n.mode
		if cfg.modeStr != "" {
			var err error
			if mode, err = explore.ParseMode(cfg.modeStr); err != nil {
				fmt.Fprintf(w, "determinacy: %v\n", err)
				return 2
			}
		}
		fmt.Fprintf(w, "--- explore %s: %s ---\n", n.name, n.desc)
		rep, err := n.explore(mode, cfg.cont, cfg.maxSchedules)
		if err != nil {
			fmt.Fprintf(w, "determinacy: explore %s: %v\n", n.name, err)
			return 2
		}
		fmt.Fprintln(w, rep.Summary())

		ok := rep.Determinate() != n.expectDivergence
		if n.expectDivergence {
			if ok {
				fmt.Fprintf(w, "expected violation FOUND: %d diverging schedule(s), e.g. picks %v -> %s\n",
					len(rep.Divergences), rep.Divergences[0].Picks, rep.Divergences[0].Outcome)
			} else {
				fmt.Fprintf(w, "FAIL: expected a divergence in %s but the exploration found none\n", n.name)
			}
		} else if !ok {
			fmt.Fprintf(w, "FAIL: %s expected determinate\n", n.name)
			for _, d := range rep.Divergences {
				fmt.Fprintf(w, "  diverging picks %v -> %s\n", d.Picks, d.Outcome)
			}
		}
		if !ok {
			code = 1
		}

		if cfg.minimize && len(rep.Divergences) > 0 {
			m, err := n.minimize(mode, cfg.cont, rep.Divergences[0])
			if err != nil {
				fmt.Fprintf(w, "determinacy: minimize %s: %v\n", n.name, err)
				return 2
			}
			fmt.Fprint(w, m.Format())
			if cfg.artifactPath != "" {
				a := m.Artifact(n.name, n.p, mode, cfg.cont)
				if err := a.Save(cfg.artifactPath); err != nil {
					fmt.Fprintf(w, "determinacy: save artifact: %v\n", err)
					return 2
				}
				fmt.Fprintf(w, "artifact written to %s (replay with: determinacy -replay %s)\n",
					cfg.artifactPath, cfg.artifactPath)
			}
		}
	}
	return code
}

// runReplay is the -replay mode: re-execute a recorded divergence
// artifact and verify the divergent final state reproduces bitwise.
func runReplay(w io.Writer, path string) int {
	a, err := explore.LoadArtifact(path)
	if err != nil {
		fmt.Fprintf(w, "determinacy: %v\n", err)
		return 2
	}
	n, ok := findNetwork(a.Network)
	if !ok {
		fmt.Fprintf(w, "determinacy: artifact names unknown network %q\n", a.Network)
		return 2
	}
	if n.p != a.P {
		fmt.Fprintf(w, "determinacy: artifact recorded P=%d but network %q now has P=%d\n", a.P, a.Network, n.p)
		return 2
	}
	mode, err := explore.ParseMode(a.Mode)
	if err != nil {
		fmt.Fprintf(w, "determinacy: %v\n", err)
		return 2
	}
	fmt.Fprintf(w, "replaying %s: network %s, %d forced pick(s), continuation %q\n",
		path, a.Network, len(a.Schedule.Picks), a.Schedule.Continue)
	for _, l := range a.Trace {
		fmt.Fprintf(w, "  %s\n", l)
	}
	got, err := n.replay(mode, a.Schedule)
	if err != nil {
		fmt.Fprintf(w, "determinacy: replay: %v\n", err)
		return 2
	}
	if got != a.Outcome {
		fmt.Fprintf(w, "FAIL: replay reached %s, artifact recorded %s\n", got, a.Outcome)
		return 1
	}
	fmt.Fprintf(w, "reproduced: %s (reference was %s)\n", got, a.Reference)
	return 0
}

// runEmpirical is the original policy-sampling mode.
func runEmpirical(w io.Writer, p, reps int, demo bool) int {
	rep, err := harness.RunDeterminacy(fdtd.SpecSmall(), p, reps)
	if err != nil {
		fmt.Fprintf(w, "determinacy: %v\n", err)
		return 1
	}
	fmt.Fprint(w, rep)
	if !rep.Deterministic() {
		return 1
	}
	if !demo {
		return 0
	}

	fmt.Fprintln(w, "\n--- demo: valid network (premises satisfied) ---")
	valid := func() []sched.Proc[int, int] {
		return []sched.Proc[int, int]{
			func(ctx *sched.Ctx[int]) int { ctx.Send(1, 7); return ctx.Recv(1) },
			func(ctx *sched.Ctx[int]) int { v := ctx.Recv(0); ctx.Send(0, v*v); return v },
		}
	}
	dr, err := core.CheckDeterminacy(valid, core.DeterminacyOptions[int]{CheckTraces: true})
	if err != nil {
		fmt.Fprintf(w, "determinacy: %v\n", err)
		return 1
	}
	fmt.Fprint(w, dr)

	fmt.Fprintln(w, "\n--- demo: premise violation (shared variable) ---")
	racy := func() []sched.Proc[int, int] {
		shared := 0
		return []sched.Proc[int, int]{
			func(ctx *sched.Ctx[int]) int { ctx.Step("w"); shared = 1; ctx.Step("r"); return shared },
			func(ctx *sched.Ctx[int]) int { ctx.Step("w"); shared = 2; ctx.Step("r"); return shared },
		}
	}
	dr, err = core.CheckDeterminacy(racy, core.DeterminacyOptions[int]{
		Policies:       sched.DefaultPolicies(10),
		ConcurrentReps: -1, // controlled runs only: the race is the point
	})
	if err != nil {
		fmt.Fprintf(w, "determinacy: %v\n", err)
		return 1
	}
	fmt.Fprint(w, dr)

	fmt.Fprintln(w, "\n--- demo: deadlocking network (receives precede sends) ---")
	deadlocked := func() []sched.Proc[int, int] {
		return []sched.Proc[int, int]{
			func(ctx *sched.Ctx[int]) int { v := ctx.Recv(1); ctx.Send(1, v); return v },
			func(ctx *sched.Ctx[int]) int { v := ctx.Recv(0); ctx.Send(0, v); return v },
		}
	}
	dr, _ = core.CheckDeterminacy(deadlocked, core.DeterminacyOptions[int]{
		Policies:       []sched.Policy{sched.Lowest{}, sched.Highest{}},
		ConcurrentReps: -1,
	})
	fmt.Fprint(w, dr)
	return 0
}
